// Command bebop-sim runs a single workload under a single processor
// configuration and prints the detailed result: cycle counts, IPC, branch
// and value prediction statistics.
//
// Usage:
//
//	bebop-sim -bench swim -config eole-bebop -predictor Medium -n 200000
//
// Configurations:
//
//	baseline      Baseline_6_60 (no VP)
//	baseline-vp   Baseline_VP_6_60 (-predictor selects the predictor:
//	              2d-Stride, VTAGE, VTAGE-2d-Stride, D-VTAGE)
//	eole          EOLE_4_60 with a per-instruction D-VTAGE
//	eole-bebop    EOLE_4_60 with BeBoP (-predictor selects a Table III
//	              config: Small_4p, Small_6p, Medium, Large)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"bebop/internal/bebop"
	"bebop/internal/core"
	"bebop/internal/engine"
	"bebop/internal/pipeline"
	"bebop/internal/specwindow"
	"bebop/internal/util"
	"bebop/internal/workload"
)

func main() {
	bench := flag.String("bench", "swim", "Table II benchmark name (see -list)")
	config := flag.String("config", "baseline", "baseline | baseline-vp | eole | eole-bebop | eole-bebop-custom")
	pred := flag.String("predictor", "D-VTAGE", "predictor (baseline-vp) or Table III config (eole-bebop)")
	n := flag.Int64("n", 200_000, "dynamic instructions to simulate")
	asJSON := flag.Bool("json", false, "emit the result as JSON")
	list := flag.Bool("list", false, "list benchmarks and exit")
	npred := flag.Int("npred", 6, "custom: predictions per entry")
	base := flag.Int("base", 2048, "custom: base component entries")
	tagged := flag.Int("tagged", 256, "custom: tagged component entries")
	stride := flag.Int("stride", 64, "custom: stride bits")
	win := flag.Int("win", -1, "custom: speculative window entries (-1 inf, 0 none)")
	pol := flag.String("policy", "Ideal", "custom: recovery policy (Ideal, Repred, DnRDnR, DnRR)")
	flag.Parse()

	if *list {
		for _, p := range workload.Profiles() {
			typ := "FP "
			if p.INT {
				typ = "INT"
			}
			fmt.Printf("%-12s %-8s %s paper-IPC=%.3f\n", p.Name, p.Suite, typ, p.PaperIPC)
		}
		return
	}

	var mk core.ConfigFactory
	switch *config {
	case "baseline":
		mk = core.Baseline()
	case "baseline-vp":
		mk = core.BaselineVP(*pred)
	case "eole":
		mk = core.EOLEInstVP()
	case "eole-bebop":
		var bb bebop.Config
		switch *pred {
		case "Small_4p":
			bb = core.SmallConfig4p()
		case "Small_6p":
			bb = core.SmallConfig6p()
		case "Medium":
			bb = core.MediumConfig()
		case "Large":
			bb = core.LargeConfig()
		default:
			fmt.Fprintf(os.Stderr, "unknown Table III config %q\n", *pred)
			os.Exit(2)
		}
		mk = core.EOLEBeBoP(*pred, bb)
	case "eole-bebop-custom":
		policy, ok := specwindow.ParsePolicy(*pol)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown policy %q\n", *pol)
			os.Exit(2)
		}
		bb := core.BlockConfig(*npred, *base, *tagged, *stride, *win, policy)
		mk = core.EOLEBeBoP("custom", bb)
	default:
		fmt.Fprintf(os.Stderr, "unknown config %q\n", *config)
		os.Exit(2)
	}

	// A single simulation is not interruptible mid-run, so no timeout or
	// signal context here; cancellation matters for batch scheduling
	// (bebop-sweep, bebop-serve), where queued jobs can still be stopped.
	eng := engine.New[pipeline.Result](engine.Options{Workers: 1})
	jr, err := eng.Run(context.Background(), engine.Job[pipeline.Result]{
		Key:   *config + "/" + *pred,
		Bench: *bench,
		Run: func(context.Context) (pipeline.Result, error) {
			return core.RunByName(*bench, *n, mk)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jr.Value); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}
	printResult(jr.Value)
	fmt.Printf("sim wall time     %s\n", jr.Elapsed.Round(time.Millisecond))
}

func printResult(r pipeline.Result) {
	fmt.Printf("config            %s\n", r.Config)
	fmt.Printf("cycles            %d\n", r.Cycles)
	fmt.Printf("instructions      %d\n", r.Insts)
	fmt.Printf("uops              %d\n", r.UOps)
	fmt.Printf("IPC               %.3f\n", r.IPC)
	fmt.Printf("uops/cycle        %.3f\n", r.UPC)
	fmt.Printf("branch MPKI       %.2f\n", r.BrMispPKI)
	fmt.Printf("L1D misses        %d\n", r.L1DMisses)
	fmt.Printf("L2 misses         %d\n", r.L2Misses)
	fmt.Printf("squashed uops     %d\n", r.SquashedUOps)
	fmt.Printf("value mispredicts %d\n", r.ValueMispredicts)
	fmt.Printf("memorder flushes  %d\n", r.MemOrderFlushes)
	if r.StorageBits > 0 {
		fmt.Printf("VP storage        %s\n", util.KB(r.StorageBits))
		fmt.Printf("VP eligible       %d\n", r.VP.Eligible)
		fmt.Printf("VP used           %d (coverage %.1f%%)\n", r.VP.Used, 100*r.VP.Coverage())
		fmt.Printf("VP accuracy       %.3f%%\n", 100*r.VP.Accuracy())
		fmt.Printf("specwin hits      %d / %d probes\n", r.VP.SpecWindowHits, r.VP.SpecWindowProbes)
		fmt.Printf("early|late|ldimm  %d | %d | %d\n", r.EarlyExecuted, r.LateExecuted, r.FreeLoadImms)
	}
}

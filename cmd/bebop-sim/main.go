// Command bebop-sim runs a single workload under a single processor
// configuration and prints the detailed result: cycle counts, IPC, branch
// and value prediction statistics. The workload is a synthetic Table II
// benchmark, a named trace from -trace-dir, or a .bbt file given
// directly with -trace — replaying a recorded benchmark reproduces the
// synthetic run bit-identically.
//
// Usage:
//
//	bebop-sim -bench swim -config eole-bebop -predictor Medium -n 200000
//	bebop-sim -trace swim-100k.bbt -config baseline -n 50000
//	bebop-sim -trace-dir traces -bench swim-mutated -n 50000
//
// Configurations:
//
//	baseline      Baseline_6_60 (no VP)
//	baseline-vp   Baseline_VP_6_60 (-predictor selects the predictor,
//	              see -help for the accepted names)
//	eole          EOLE_4_60 with a per-instruction D-VTAGE
//	eole-bebop    EOLE_4_60 with BeBoP (-predictor selects a Table III
//	              config: Small_4p, Small_6p, Medium, Large)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bebop/internal/core"
	"bebop/internal/engine"
	"bebop/internal/pipeline"
	"bebop/internal/prof"
	"bebop/internal/specwindow"
	"bebop/internal/trace"
	"bebop/internal/util"
	"bebop/internal/workload"
)

func main() {
	bench := flag.String("bench", "swim", "workload name: Table II benchmark or -trace-dir trace (see -list)")
	tracePath := flag.String("trace", "", "replay this .bbt trace file instead of -bench")
	traceDir := flag.String("trace-dir", "", "directory of .bbt traces to add as named workloads")
	config := flag.String("config", "baseline",
		strings.Join(core.ConfigNames(), " | ")+" | eole-bebop-custom")
	pred := flag.String("predictor", "D-VTAGE",
		"predictor for baseline-vp ("+strings.Join(core.AllPredictorNames(), ", ")+
			") or Table III config for eole-bebop (Small_4p, Small_6p, Medium, Large)")
	n := flag.Int64("n", 200_000, "dynamic instructions to simulate")
	asJSON := flag.Bool("json", false, "emit the result as JSON")
	list := flag.Bool("list", false, "list workloads and exit")
	npred := flag.Int("npred", 6, "custom: predictions per entry")
	base := flag.Int("base", 2048, "custom: base component entries")
	tagged := flag.Int("tagged", 256, "custom: tagged component entries")
	stride := flag.Int("stride", 64, "custom: stride bits")
	win := flag.Int("win", -1, "custom: speculative window entries (-1 inf, 0 none)")
	pol := flag.String("policy", "Ideal", "custom: recovery policy (Ideal, Repred, DnRDnR, DnRR)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the simulation to this file")
	memprofile := flag.String("memprofile", "", "write a post-run heap profile to this file")
	flag.Parse()

	cat, err := trace.Catalog(*traceDir)
	if err != nil {
		fatal(err)
	}

	if *list {
		for _, p := range workload.Profiles() {
			typ := "FP "
			if p.INT {
				typ = "INT"
			}
			fmt.Printf("%-12s %-8s %s paper-IPC=%.3f\n", p.Name, p.Suite, typ, p.PaperIPC)
		}
		for _, name := range cat.Names() {
			src, _ := cat.Lookup(name)
			if fs, ok := src.(trace.FileSource); ok {
				fmt.Printf("%-12s trace    %s\n", name, fs.Path)
			}
		}
		return
	}

	var mk core.ConfigFactory
	if *config == "eole-bebop-custom" {
		policy, ok := specwindow.ParsePolicy(*pol)
		if !ok {
			fatal(fmt.Errorf("unknown policy %q", *pol))
		}
		bb := core.BlockConfig(*npred, *base, *tagged, *stride, *win, policy)
		mk = core.EOLEBeBoP("custom", bb)
	} else if mk, err = core.NamedFactory(*config, *pred); err != nil {
		fatal(err)
	}

	benchSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "bench" {
			benchSet = true
		}
	})

	var src workload.Source
	switch {
	case *tracePath != "" && benchSet:
		fatal(fmt.Errorf("-bench and -trace are mutually exclusive"))
	case *tracePath != "":
		src = trace.NewFileSource(*tracePath)
	default:
		var ok bool
		if src, ok = cat.Lookup(*bench); !ok {
			fatal(fmt.Errorf("unknown workload %q (have: %s)", *bench, cat.NameList()))
		}
	}

	stopCPU, err := prof.StartCPU(*cpuprofile)
	if err != nil {
		fatal(err)
	}
	// A single simulation is not interruptible mid-run, so no timeout or
	// signal context here; cancellation matters for batch scheduling
	// (bebop-sweep, bebop-serve), where queued jobs can still be stopped.
	eng := engine.New[pipeline.Result](engine.Options{Workers: 1})
	jr, err := eng.Run(context.Background(), engine.Job[pipeline.Result]{
		Key:   *config + "/" + *pred,
		Bench: src.Name(),
		Run: func(context.Context) (pipeline.Result, error) {
			return core.RunSource(src, *n, mk)
		},
	})
	stopCPU()
	if err != nil {
		fatal(err)
	}
	if err := prof.WriteHeap(*memprofile); err != nil {
		fatal(err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jr.Value); err != nil {
			fatal(err)
		}
		return
	}
	printResult(jr.Value)
	fmt.Printf("sim wall time     %s\n", jr.Elapsed.Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}

func printResult(r pipeline.Result) {
	fmt.Printf("config            %s\n", r.Config)
	fmt.Printf("cycles            %d\n", r.Cycles)
	fmt.Printf("instructions      %d\n", r.Insts)
	fmt.Printf("uops              %d\n", r.UOps)
	fmt.Printf("IPC               %.3f\n", r.IPC)
	fmt.Printf("uops/cycle        %.3f\n", r.UPC)
	fmt.Printf("branch MPKI       %.2f\n", r.BrMispPKI)
	fmt.Printf("L1D misses        %d (+%d MSHR merges)\n", r.L1DMisses, r.L1DMSHRMerges)
	fmt.Printf("L2 misses         %d (+%d MSHR merges)\n", r.L2Misses, r.L2MSHRMerges)
	fmt.Printf("squashed uops     %d\n", r.SquashedUOps)
	fmt.Printf("value mispredicts %d\n", r.ValueMispredicts)
	fmt.Printf("memorder flushes  %d\n", r.MemOrderFlushes)
	if r.StorageBits > 0 {
		fmt.Printf("VP storage        %s\n", util.KB(r.StorageBits))
		fmt.Printf("VP eligible       %d\n", r.VP.Eligible)
		fmt.Printf("VP used           %d (coverage %.1f%%)\n", r.VP.Used, 100*r.VP.Coverage())
		fmt.Printf("VP accuracy       %.3f%%\n", 100*r.VP.Accuracy())
		fmt.Printf("specwin hits      %d / %d probes\n", r.VP.SpecWindowHits, r.VP.SpecWindowProbes)
		fmt.Printf("early|late|ldimm  %d | %d | %d\n", r.EarlyExecuted, r.LateExecuted, r.FreeLoadImms)
	}
}

// Command bebop-lint is the repo's invariant multichecker: four custom
// analyzers that move the load-bearing runtime properties — bit-identical
// determinism, checkpoint snapshot completeness, hot-path allocation
// freedom, and the bebop/sim SDK boundary — from "caught by the right
// test, sometimes" to "rejected at analysis time, always".
//
// Usage:
//
//	bebop-lint [flags] [packages]
//
// With no packages, ./... is analyzed. Each analyzer has an enable flag
// (all default true); -escape additionally cross-checks //bebop:hotpath
// functions against the compiler's real escape analysis; -json emits
// machine-readable findings. Exit status: 0 clean, 1 findings, 2 failure
// to analyze.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"bebop/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		det      = flag.Bool("det", true, "run detlint (determinism-critical packages)")
		snap     = flag.Bool("snap", true, "run snaplint (snapshot completeness)")
		hotalloc = flag.Bool("hotalloc", true, "run hotalloc (//bebop:hotpath allocation rules)")
		boundary = flag.Bool("boundary", true, "run boundarylint (SDK boundary + report schema tags)")
		escape   = flag.Bool("escape", false, "cross-check //bebop:hotpath functions against compiler escape analysis (-gcflags=-m)")
		jsonOut  = flag.Bool("json", false, "emit findings as JSON")
		dir      = flag.String("C", ".", "directory to resolve package patterns from")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: bebop-lint [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range []*analysis.Analyzer{analysis.Detlint, analysis.Snaplint, analysis.Hotalloc, analysis.Boundarylint} {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(flag.CommandLine.Output(), "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	var analyzers []*analysis.Analyzer
	if *det {
		analyzers = append(analyzers, analysis.Detlint)
	}
	if *snap {
		analyzers = append(analyzers, analysis.Snaplint)
	}
	if *hotalloc {
		analyzers = append(analyzers, analysis.Hotalloc)
	}
	if *boundary {
		analyzers = append(analyzers, analysis.Boundarylint)
	}

	pkgs, err := analysis.Load(*dir, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bebop-lint:", err)
		return 2
	}
	diags, err := analysis.RunAnalyzers(analyzers, pkgs, true)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bebop-lint:", err)
		return 2
	}
	if *escape {
		ediags, err := analysis.CheckEscapes(*dir, pkgs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bebop-lint:", err)
			return 2
		}
		diags = append(diags, ediags...)
	}

	if *jsonOut {
		type finding struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]finding, 0, len(diags))
		for _, d := range diags {
			out = append(out, finding{File: d.Pos.Filename, Line: d.Pos.Line, Column: d.Pos.Column, Analyzer: d.Analyzer, Message: d.Message})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "bebop-lint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "bebop-lint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

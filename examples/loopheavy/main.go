// Loopheavy: demonstrate why the block-based speculative window exists
// (Section IV). On tight, high-trip-count loops, several instances of the
// same fetch block are in flight at once: without the window, D-VTAGE adds
// its strides to *retired* last values that are several iterations stale,
// predictions are wrong, confidence never saturates, and coverage
// collapses (Fig. 7(b)).
//
//	go run ./examples/loopheavy
package main

import (
	"fmt"

	"bebop/internal/core"
	"bebop/internal/specwindow"
)

func main() {
	// bzip2 and wupwise are the paper's loop-heavy, window-sensitive
	// workloads (0.820 and 0.914 without a window in Fig. 7(b)).
	benches := []string{"bzip2", "wupwise", "applu"}
	sizes := []int{-1, 56, 32, 16, 0}
	const insts = 120_000

	fmt.Printf("%-10s", "window")
	for _, b := range benches {
		fmt.Printf(" %12s", b)
	}
	fmt.Println("   (speedup over Baseline_6_60 / VP coverage)")

	base := map[string]int64{}
	for _, b := range benches {
		r, err := core.RunByName(b, insts, core.Baseline())
		if err != nil {
			panic(err)
		}
		base[b] = r.Cycles
	}

	for _, sz := range sizes {
		label := fmt.Sprintf("%d", sz)
		if sz < 0 {
			label = "inf"
		} else if sz == 0 {
			label = "none"
		}
		fmt.Printf("%-10s", label)
		for _, b := range benches {
			bb := core.BlockConfig(6, 2048, 256, 64, sz, specwindow.PolicyDnRDnR)
			r, _ := core.RunByName(b, insts, core.EOLEBeBoP("win", bb))
			fmt.Printf("  %6.3f/%3.0f%%", float64(base[b])/float64(r.Cycles), 100*r.VP.Coverage())
		}
		fmt.Println()
	}
}

// Loopheavy: demonstrate why the block-based speculative window exists
// (Section IV). On tight, high-trip-count loops, several instances of the
// same fetch block are in flight at once: without the window, D-VTAGE adds
// its strides to *retired* last values that are several iterations stale,
// predictions are wrong, confidence never saturates, and coverage
// collapses (Fig. 7(b)). The window sweep is expressed as a custom BeBoP
// geometry (sim.WithBeBoP) varying only the window size.
//
//	go run ./examples/loopheavy
package main

import (
	"context"
	"fmt"
	"log"

	"bebop/sim"
)

func main() {
	// bzip2 and wupwise are the paper's loop-heavy, window-sensitive
	// workloads (0.820 and 0.914 without a window in Fig. 7(b)).
	benches := []string{"bzip2", "wupwise", "applu"}
	sizes := []int{-1, 56, 32, 16, 0}
	const insts = 120_000
	ctx := context.Background()

	fmt.Printf("%-10s", "window")
	for _, b := range benches {
		fmt.Printf(" %12s", b)
	}
	fmt.Println("   (speedup over Baseline_6_60 / VP coverage)")

	base := map[string]sim.Report{}
	for _, b := range benches {
		r, err := sim.New(sim.WithWorkload(b), sim.WithConfig("baseline"), sim.WithInsts(insts)).Run(ctx)
		if err != nil {
			log.Fatal(err)
		}
		base[b] = r
	}

	for _, sz := range sizes {
		label := fmt.Sprintf("%d", sz)
		if sz < 0 {
			label = "inf"
		} else if sz == 0 {
			label = "none"
		}
		fmt.Printf("%-10s", label)
		for _, b := range benches {
			r, err := sim.New(
				sim.WithWorkload(b),
				sim.WithBeBoP(sim.BeBoPConfig{
					NPred: 6, BaseEntries: 2048, TaggedEntries: 256,
					StrideBits: 64, WindowSize: sz, Policy: "DnRDnR",
				}),
				sim.WithInsts(insts),
			).Run(ctx)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %6.3f/%3.0f%%", r.SpeedupOver(base[b]), 100*r.VP.Coverage)
		}
		fmt.Println()
	}
}

// Quickstart: simulate one workload under the three pipeline models of the
// paper — Baseline_6_60 (no value prediction), Baseline_VP_6_60
// (per-instruction D-VTAGE with an idealistic infrastructure), and
// EOLE_4_60 with the Medium BeBoP configuration of Table III — and print
// the speedups. Everything goes through the public bebop/sim SDK.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"bebop/sim"
)

func main() {
	const bench = "swim"
	const insts = 150_000
	ctx := context.Background()

	run := func(config string) sim.Report {
		rep, err := sim.New(
			sim.WithWorkload(bench),
			sim.WithConfig(config),
			sim.WithInsts(insts),
		).Run(ctx)
		if err != nil {
			log.Fatal(err)
		}
		return rep
	}
	base := run("baseline")
	vp := run("baseline-vp/D-VTAGE")
	bebop := run("eole-bebop/Medium")

	fmt.Printf("workload: %s (%d measured instructions)\n\n", bench, insts)
	fmt.Printf("%-34s %10s %8s %9s\n", "configuration", "cycles", "IPC", "speedup")
	fmt.Printf("%-34s %10d %8.3f %9s\n", base.Config, base.Cycles, base.IPC, "1.000")
	fmt.Printf("%-34s %10d %8.3f %9.3f\n", vp.Config, vp.Cycles, vp.IPC, vp.SpeedupOver(base))
	fmt.Printf("%-34s %10d %8.3f %9.3f\n", bebop.Config, bebop.Cycles, bebop.IPC, bebop.SpeedupOver(base))

	fmt.Printf("\nBeBoP D-VTAGE (Medium, %s):\n", bebop.VPStorage())
	fmt.Printf("  coverage  %.1f%% of eligible µ-ops used a prediction\n", 100*bebop.VP.Coverage)
	fmt.Printf("  accuracy  %.3f%% of used predictions were correct\n", 100*bebop.VP.Accuracy)
	fmt.Printf("  window    %d hits / %d probes\n", bebop.VP.SpecWindowHits, bebop.VP.SpecWindowProbes)
}

// Spec-file: run a simulation described entirely by a committed JSON
// RunSpec — the declarative counterpart of the quickstart's builder
// calls. The same file drives `bebop-sim -spec` and, as a request body,
// `POST /v1/runs` on bebop-serve; all three produce bit-identical
// reports.
//
//	go run ./examples/spec-file                 # runs swim-medium.json
//	go run ./examples/spec-file my-run.json
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"

	"bebop/sim"
)

func main() {
	path := "examples/spec-file/swim-medium.json"
	if len(os.Args) > 1 {
		path = os.Args[1]
	}
	spec, err := sim.LoadRunSpec(path)
	if err != nil {
		log.Fatal(err)
	}

	rep, err := sim.Run(context.Background(), spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("spec: %s\n", path)
	fmt.Printf("%s on %s: %d cycles, IPC %.3f", rep.Config, rep.Workload, rep.Cycles, rep.IPC)
	if rep.VPStorageBits > 0 {
		fmt.Printf(", VP coverage %.1f%% @ %s", 100*rep.VP.Coverage, rep.VPStorage())
	}
	fmt.Println()

	// The report embeds the normalized spec that reproduces it; print the
	// full result the way `bebop-sim -spec <file> -json` would.
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
}

// Custom workload: build a synthetic benchmark profile from scratch (not
// one of the Table II substitutes) and explore how its value-pattern mix
// changes the benefit of value prediction. Doubling the stride share turns
// a VP-insensitive program into a VP-friendly one. The profile is plain
// data (sim.Profile), passed to the SDK with sim.WithProfile — the same
// profile can also be embedded in a RunSpec JSON file and POSTed to
// bebop-serve.
//
//	go run ./examples/custom-workload
package main

import (
	"context"
	"fmt"
	"log"

	"bebop/sim"
)

func myProfile(strideShare float64) sim.Profile {
	return sim.Profile{
		Name:     "custom",
		Suite:    "user",
		INT:      false,
		PaperIPC: 0,
		Seed:     0xC0FFEE,

		NumLoops:    4,
		LoopBodyMin: 12, LoopBodyMax: 28,
		IterMin: 80, IterMax: 600,

		Classes: sim.ClassMix{ALU: 0.34, FP: 0.20, FPMul: 0.08, Mul: 0.02, Div: 0.005, Load: 0.24, Store: 0.115},
		Values: sim.PatternMix{
			Const:  0.15,
			Stride: strideShare,
			CFDep:  0.10,
			Chaos:  1 - 0.15 - strideShare - 0.10,
		},

		CondBrFrac: 0.10, BrPatternFrac: 0.8, BrTakenP: 0.6,
		DepDepth: 8, AccumFrac: 0.10, RedFrac: 0.20,
		FootprintLog2: 18, LoadStride: 16,
		LoadImmFrac: 0.08, HistEntropyLog2: 3, MultiUopFrac: 0.2,
		ChainChaosFrac: 1 - strideShare, // unpredictable chains shrink with stride share
	}
}

func main() {
	const insts = 100_000
	ctx := context.Background()
	fmt.Printf("%-14s %12s %12s %10s %10s\n",
		"stride share", "base IPC", "VP IPC", "speedup", "coverage")
	for _, share := range []float64{0.10, 0.30, 0.55} {
		prof := myProfile(share)
		base, err := sim.New(sim.WithProfile(prof), sim.WithConfig("baseline"), sim.WithInsts(insts)).Run(ctx)
		if err != nil {
			log.Fatal(err)
		}
		vp, err := sim.New(sim.WithProfile(prof), sim.WithConfig("baseline-vp/D-VTAGE"), sim.WithInsts(insts)).Run(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14.2f %12.3f %12.3f %10.3f %9.1f%%\n",
			share, base.IPC, vp.IPC, vp.SpeedupOver(base), 100*vp.VP.Coverage)
	}
}

// Sampled simulation: estimate a long run from a handful of detailed
// measurement intervals (SMARTS-style), getting an IPC mean with a 95%
// confidence interval instead of one exact number — at a fraction of
// the detailed-simulation cost. The example runs the same workload and
// budget in full detail and sampled, then shows the estimate landing
// inside its own confidence interval.
//
//	go run ./examples/sampled
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"bebop/sim"
)

func main() {
	const bench = "gcc"
	const insts = 800_000
	ctx := context.Background()

	opts := []sim.Option{
		sim.WithWorkload(bench),
		sim.WithConfig("eole-bebop/Medium"),
		sim.WithInsts(insts),
		sim.WithWarmup(200_000),
	}

	start := time.Now()
	full, err := sim.New(opts...).Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fullWall := time.Since(start)

	// The zero value of every SamplingSpec field selects a documented
	// default; the knobs below trade accuracy against speed. Checkpoints
	// (SamplingSpec.Checkpoints) additionally amortize the warming across
	// runs, but need a trace-backed workload (sim.WithTrace).
	start = time.Now()
	sampled, err := sim.New(append(opts,
		sim.WithSampling(sim.SamplingSpec{
			Intervals:     20,     // measurement intervals across the budget
			IntervalInsts: 8_000,  // detailed instructions per interval
			Warmup:        60_000, // functional warming before each interval
			DetailWarmup:  2_000,  // detailed (unmeasured) pipeline fill
		}))...).Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	sampledWall := time.Since(start)

	s := sampled.Sampling
	fmt.Printf("workload %s, %d-instruction budget, %s\n\n", bench, insts, full.Config)
	fmt.Printf("full detail   IPC %.4f                  (%s)\n", full.IPC, fullWall.Round(time.Millisecond))
	fmt.Printf("sampled       IPC %.4f ± %.4f (95%% CI)  (%s, %d×%d insts in detail)\n",
		s.IPCMean, s.IPCCI95, sampledWall.Round(time.Millisecond), s.Intervals, s.IntervalInsts)

	errAbs := math.Abs(s.IPCMean - full.IPC)
	fmt.Printf("\nestimate is %.4f off the detailed IPC — %s the reported interval\n",
		errAbs, map[bool]string{true: "inside", false: "OUTSIDE"}[errAbs <= s.IPCCI95])
}

// Predictor duel: feed hand-built value series to each per-instruction
// predictor and show which pattern classes each one captures — the
// motivation for D-VTAGE (Section III): VTAGE captures control-flow
// dependent values but not strides; stride predictors capture strides but
// not control-flow; D-VTAGE captures both, in one set of tables. The raw
// predictors are reached through the SDK (sim.NewPredictor), outside any
// pipeline.
//
//	go run ./examples/predictor-duel
package main

import (
	"fmt"
	"log"

	"bebop/sim"
)

// series generates a value stream plus the branch history that drives it.
type series struct {
	name string
	gen  func(i int, h *sim.BranchHistory) uint64
}

func main() {
	rng := sim.NewRNG(42)
	cur := uint64(0)
	sets := []series{
		{"constant", func(i int, h *sim.BranchHistory) uint64 { return 42 }},
		{"stride +8", func(i int, h *sim.BranchHistory) uint64 { return uint64(i) * 8 }},
		{"cf-dependent", func(i int, h *sim.BranchHistory) uint64 {
			taken := (i/4)%2 == 0
			h.Push(taken, 0x40)
			if taken {
				return 1111
			}
			return 2222
		}},
		{"cf-dep stride", func(i int, h *sim.BranchHistory) uint64 {
			taken := (i/4)%2 == 0
			h.Push(taken, 0x40)
			if taken {
				cur += 2
			} else {
				cur += 64
			}
			return cur
		}},
		{"random", func(i int, h *sim.BranchHistory) uint64 { return rng.Uint64() }},
	}

	fmt.Printf("%-14s", "pattern")
	for _, p := range sim.InstPredictors() {
		fmt.Printf(" %16s", p)
	}
	fmt.Println()

	const n, window = 4000, 1000
	for _, s := range sets {
		fmt.Printf("%-14s", s.name)
		for _, pname := range sim.InstPredictors() {
			p, err := sim.NewPredictor(pname)
			if err != nil {
				log.Fatal(err)
			}
			var h sim.BranchHistory
			var prev uint64
			hasPrev := false
			used, correct := 0, 0
			cur = 0
			for i := 0; i < n; i++ {
				o := p.Predict(0x400100, 0, &h, prev, hasPrev)
				actual := s.gen(i, &h)
				if i >= n-window && o.Predicted && o.Confident {
					used++
					if o.Value == actual {
						correct++
					}
				}
				p.Update(&o, actual)
				prev, hasPrev = actual, true
			}
			fmt.Printf(" %8d/%-7d", correct, window)
		}
		fmt.Println()
	}
	fmt.Println("\ncells: correct-and-confident predictions over the last 1000 instances")
}

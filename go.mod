module bebop

go 1.24

package sim

import (
	"bebop/internal/branch"
	"bebop/internal/core"
	"bebop/internal/predictor"
	"bebop/internal/util"
	"bebop/internal/workload"
)

// The SDK re-exports (as aliases) the handful of internal types advanced
// consumers compose with: custom workload profiles for WithProfile, and
// the raw per-instruction predictor interface for microbenchmarks like
// examples/predictor-duel. Aliasing keeps one definition of each type —
// a sim.Profile IS a workload.Profile — while giving external importers
// a name for it outside internal/.

// Profile describes a synthetic benchmark: loop geometry, instruction
// class mix, value-pattern mix, branch behaviour and memory footprint.
// Pass one to WithProfile (or embed it in RunSpec.Profile) to simulate a
// workload that is not in the Table II catalog.
type Profile = workload.Profile

// ClassMix is the per-instruction-class share of a Profile.
type ClassMix = workload.ClassMix

// PatternMix is the value-pattern share of a Profile (const, stride,
// control-flow dependent, control-flow dependent stride, chaos).
type PatternMix = workload.PatternMix

// Profiles returns the 36 synthetic Table II profiles, a starting point
// for custom variations.
func Profiles() []Profile { return workload.Profiles() }

// Predictor is a raw per-instruction value predictor: Predict/Update at
// instruction grain, outside any pipeline. Useful for predictor
// microbenchmarks; simulations use WithConfig/WithPredictor instead.
type Predictor = predictor.Predictor

// PredictorOutcome is one Predictor lookup result.
type PredictorOutcome = predictor.Outcome

// BranchHistory is the global branch history register predictors are
// indexed with.
type BranchHistory = branch.History

// NewPredictor builds a fresh per-instruction predictor by name (see
// Predictors), sized as in Section V-B. An unknown name is an
// *UnknownNameError listing the valid predictors.
func NewPredictor(name string) (Predictor, error) {
	return core.NewInstPredictor(name)
}

// RNG is the xorshift64* generator used throughout the reproduction;
// exposed so examples and tests can generate deterministic value streams
// without depending on internal packages.
type RNG = util.RNG

// NewRNG seeds an RNG (0 selects a fixed default seed).
func NewRNG(seed uint64) *RNG { return util.NewRNG(seed) }

package sim

import (
	"runtime/debug"

	"bebop/internal/prof"
)

// Version reports the module version, VCS revision and Go toolchain
// baked into the binary by the Go linker — the one version string all
// five commands print for -version. Built without VCS metadata (e.g.
// `go run` from a tarball) it degrades gracefully.
func Version() string {
	out := "bebop"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out + " (no build info)"
	}
	ver := bi.Main.Version
	if ver == "" {
		ver = "(devel)"
	}
	out += " " + ver
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if rev != "" {
		out += " (" + rev + dirty + ")"
	}
	if bi.GoVersion != "" {
		out += " " + bi.GoVersion
	}
	return out
}

// StartCPUProfile begins a CPU profile written to path, returning the
// stop function. An empty path is a no-op. Exposed so perf-facing
// commands keep their -cpuprofile flags without reaching into internal/.
func StartCPUProfile(path string) (stop func(), err error) {
	return prof.StartCPU(path)
}

// WriteHeapProfile captures a post-GC heap profile to path (empty path
// is a no-op).
func WriteHeapProfile(path string) error { return prof.WriteHeap(path) }

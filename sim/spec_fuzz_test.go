package sim

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzRunSpecValidate drives arbitrary JSON through the public spec
// pipeline — DecodeRunSpec then Validate — and checks the three
// contracts every front end (CLI -spec files, POST /v1/runs bodies)
// relies on:
//
//  1. no input panics: malformed JSON and nonsense specs fail with
//     errors, never crashes;
//  2. normalization is idempotent: a validated spec is a fixed point of
//     Validate, so re-validating a stored spec never drifts;
//  3. accepted specs round-trip through JSON unchanged, so a normalized
//     spec written to disk (or echoed in a Report) replays exactly.
func FuzzRunSpecValidate(f *testing.F) {
	for _, seed := range []string{
		`{}`,
		`{"workload":"swim"}`,
		`{"workload":"swim","config":"EOLE/Medium","insts":5000}`,
		`{"workload":"probe/vp-stride/16","config":"eole-bebop","predictor":"Medium"}`,
		`{"workload":"probe/nope/16"}`,
		`{"trace":"x.bbt","config":"baseline"}`,
		`{"profile":{"Name":"p"}}`,
		`{"workload":"swim","bebop":{"npred":6,"base_entries":64,"tagged_entries":64,"stride_bits":8,"window_size":32}}`,
		`{"workload":"swim","config":"baseline-vp/VTAGE","warmup":0}`,
		`{"workload":"swim","insts":-3}`,
		`{"schema_version":99,"workload":"swim"}`,
		`{"workload":"swim","trace":"x.bbt"}`,
		`{"workload":"swim","trace_dir":"probably/not/a/dir"}`,
		`not json at all`,
		`{"workload":"swim","instz":5}`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, blob string) {
		spec, err := DecodeRunSpec(strings.NewReader(blob))
		if err != nil {
			return // malformed input must fail cleanly, nothing more
		}
		// Hermeticity: Validate scans TraceDir to build the workload
		// catalog. Point fuzz-chosen paths at an empty temp directory so
		// the fuzzer neither reads nor depends on the host filesystem.
		if spec.TraceDir != "" {
			spec.TraceDir = t.TempDir()
		}
		norm, err := spec.Validate()
		if err != nil {
			return // rejected specs only need to reject gracefully
		}
		again, err := norm.Validate()
		if err != nil {
			t.Fatalf("validated spec rejected on re-validation: %v\nspec: %+v", err, norm)
		}
		if !reflect.DeepEqual(norm, again) {
			t.Fatalf("Validate is not idempotent:\n1: %+v\n2: %+v", norm, again)
		}
		out, err := norm.JSON()
		if err != nil {
			t.Fatalf("validated spec does not marshal: %v\nspec: %+v", err, norm)
		}
		decoded, err := DecodeRunSpec(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("validated spec does not decode back: %v\njson: %s", err, out)
		}
		if !reflect.DeepEqual(norm, decoded) {
			t.Fatalf("JSON round trip changed the spec:\nbefore: %+v\nafter:  %+v", norm, decoded)
		}
	})
}

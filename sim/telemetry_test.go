package sim

import (
	"context"
	"strings"
	"testing"
)

// stripTelemetry returns the report with its observer-only block
// removed and its Spec.Warmup pointer canonicalized to other's (the
// values are asserted equal first), so the rest can be compared with ==.
func stripTelemetry(t *testing.T, r, other Report) Report {
	t.Helper()
	r.Telemetry = nil
	if r.Spec.Warmup == nil || other.Spec.Warmup == nil || *r.Spec.Warmup != *other.Spec.Warmup {
		t.Fatalf("warmup diverged: %v vs %v", r.Spec.Warmup, other.Spec.Warmup)
	}
	r.Spec.Warmup = other.Spec.Warmup
	return r
}

func TestWithTelemetryAttachesAndNeverPerturbs(t *testing.T) {
	opts := func(extra ...Option) []Option {
		return append([]Option{
			WithWorkload("gcc"),
			WithConfig("eole-bebop/Medium"),
			WithInsts(20_000),
		}, extra...)
	}
	plain, err := New(opts()...).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Telemetry != nil {
		t.Fatal("telemetry present without WithTelemetry")
	}
	traced, err := New(opts(WithTelemetry())...).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if traced.Telemetry == nil {
		t.Fatal("WithTelemetry set but Report.Telemetry is nil")
	}
	// The tentpole contract: telemetry observes, never perturbs.
	if got := stripTelemetry(t, traced, plain); got != plain {
		t.Fatalf("telemetry perturbed the run:\nplain:  %+v\ntraced: %+v", plain, got)
	}

	tel := traced.Telemetry
	if len(tel.Spans) != 1 || tel.Spans[0].Name != "detailed" || tel.Spans[0].Interval != -1 {
		t.Fatalf("plain run spans = %+v, want one run-scoped detailed span", tel.Spans)
	}
	if tel.Spans[0].Insts != 30_000 { // warmup (10K) + measured (20K)
		t.Fatalf("detailed span insts = %d, want 30000", tel.Spans[0].Insts)
	}
	if len(tel.H2PBranches) == 0 {
		t.Fatal("gcc run attributed no branch mispredictions")
	}
	for _, e := range tel.H2PBranches {
		if !strings.HasPrefix(e.PC, "0x") {
			t.Fatalf("PC %q not hex-encoded", e.PC)
		}
		if e.Mispredicts == 0 {
			t.Fatalf("zero-count H2P entry: %+v", e)
		}
	}

	// The H2P attribution (unlike wall-clock spans) is deterministic.
	again, err := New(opts(WithTelemetry())...).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Telemetry.H2PBranches) != len(tel.H2PBranches) {
		t.Fatalf("H2P not deterministic: %d vs %d entries",
			len(again.Telemetry.H2PBranches), len(tel.H2PBranches))
	}
	for i := range tel.H2PBranches {
		if again.Telemetry.H2PBranches[i] != tel.H2PBranches[i] {
			t.Fatalf("H2P entry %d differs across identical runs: %+v vs %+v",
				i, again.Telemetry.H2PBranches[i], tel.H2PBranches[i])
		}
	}
}

func TestTelemetrySampledSpans(t *testing.T) {
	rep, err := New(
		WithWorkload("swim"),
		WithInsts(40_000),
		WithSampling(SamplingSpec{Intervals: 4}),
		WithTelemetry(),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Telemetry == nil || rep.Sampling == nil {
		t.Fatal("sampled telemetry run missing a report block")
	}
	detailed := map[int]bool{}
	var root int
	for _, sp := range rep.Telemetry.Spans {
		if sp.Name == "sampled" && sp.Interval == -1 {
			root++
		}
		if sp.Name == "detailed" && sp.Interval >= 0 {
			detailed[sp.Interval] = true
		}
	}
	if root != 1 {
		t.Fatalf("want exactly one sampled root span, got %d", root)
	}
	for i := 0; i < 4; i++ {
		if !detailed[i] {
			t.Fatalf("interval %d has no detailed span; spans: %+v", i, rep.Telemetry.Spans)
		}
	}
}

// TestSampledProgressFires pins the WithProgress fix: sampled runs must
// report per-interval completion (they previously fired nothing).
func TestSampledProgressFires(t *testing.T) {
	var got []int64
	var total int64
	rep, err := New(
		WithWorkload("swim"),
		WithInsts(40_000),
		WithSampling(SamplingSpec{Intervals: 4}),
		WithProgress(func(streamed, tot int64) {
			got = append(got, streamed)
			total = tot
		}),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != rep.Sampling.Intervals {
		t.Fatalf("progress fired %d times, want once per interval (%d)", len(got), rep.Sampling.Intervals)
	}
	per := rep.Sampling.DetailWarmup + rep.Sampling.IntervalInsts
	if total != int64(rep.Sampling.Intervals)*per {
		t.Fatalf("total = %d, want %d", total, int64(rep.Sampling.Intervals)*per)
	}
	for i, s := range got {
		if want := int64(i+1) * per; s != want {
			t.Fatalf("progress call %d reported %d streamed, want %d", i, s, want)
		}
	}
}

func TestWriteMetricsExposesCoreSeries(t *testing.T) {
	if _, err := New(WithWorkload("swim"), WithInsts(5_000)).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, series := range []string{
		"bebop_pipeline_insts_total",
		"bebop_pipeline_runs_total",
		"bebop_core_proc_pool_total",
	} {
		if !strings.Contains(out, series) {
			t.Errorf("WriteMetrics output missing %s:\n%.1000s", series, out)
		}
	}
}

func TestWriteSpanTree(t *testing.T) {
	rep, err := New(
		WithWorkload("swim"),
		WithInsts(40_000),
		WithSampling(SamplingSpec{Intervals: 4}),
		WithTelemetry(),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteSpanTree(&b, rep.Telemetry); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"sampled", "interval 0", "interval 3", "detailed"} {
		if !strings.Contains(out, want) {
			t.Errorf("span tree missing %q:\n%s", want, out)
		}
	}
	if err := WriteSpanTree(&b, nil); err != nil {
		t.Fatal(err)
	}
}

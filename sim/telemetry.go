package sim

import (
	"fmt"
	"io"
	"strconv"

	"bebop/internal/pipeline"
	"bebop/internal/telemetry"
)

// WithTelemetry turns on run observability: the Report gains a
// Telemetry block with wall-clock phase spans (fast-forward / warming /
// detailed, per sampling interval for sampled runs) and per-PC
// hard-to-predict misprediction attribution (the top mispredicting
// static branches and value-predicted instructions of the measured
// window).
//
// Telemetry is an observer, not run configuration: every other Report
// field stays bit-identical with or without it, and it is not part of
// RunSpec. Span timings are wall-clock and vary between runs; the H2P
// attribution is deterministic.
func WithTelemetry() Option {
	return func(s *Sim) { s.telemetry = true }
}

// TelemetryReport is the observability slice of a Report (schema v3).
type TelemetryReport struct {
	// Spans lists the run's execution phases, ordered by sampling
	// interval (-1 = run-scoped) then start time.
	Spans []SpanReport `json:"spans"`

	// H2PBranches / H2PValues rank the static PCs responsible for the
	// most branch / value mispredictions in the measured window.
	H2PBranches []H2PReport `json:"h2p_branches"`
	H2PValues   []H2PReport `json:"h2p_values"`
	// Dropped mispredictions hit PCs the fixed-size attribution table
	// had no room for; the listed entries are still exact.
	H2PBranchPCsDropped uint64 `json:"h2p_branch_pcs_dropped"`
	H2PValuePCsDropped  uint64 `json:"h2p_value_pcs_dropped"`
}

// SpanReport is one recorded execution phase.
type SpanReport struct {
	// Name is the phase: "detailed", "warming", "fast-forward",
	// "restore" or "sampled" (the sampled run's root span).
	Name string `json:"name"`
	// Interval is the sampling-interval index, -1 for run-scoped spans.
	Interval int `json:"interval"`
	// StartMS/DurMS are wall-clock milliseconds relative to run start.
	StartMS float64 `json:"start_ms"`
	DurMS   float64 `json:"dur_ms"`
	// Insts is the instruction budget the phase covered (0 if unknown).
	Insts int64 `json:"insts"`
}

// H2PReport is one hard-to-predict static instruction.
type H2PReport struct {
	// PC is the static instruction address, hex-encoded ("0x401a2c") —
	// a string because JSON numbers lose uint64 precision past 2^53.
	PC string `json:"pc"`
	// Mispredicts is the misprediction count charged to this PC in the
	// measured window; MPKI normalizes it per kilo-instruction.
	Mispredicts uint64  `json:"mispredicts"`
	MPKI        float64 `json:"mpki"`
}

// newTelemetryReport flattens the trace and the result's H2P attribution.
func newTelemetryReport(tr *telemetry.Trace, res pipeline.Result) *TelemetryReport {
	out := &TelemetryReport{Spans: []SpanReport{}, H2PBranches: []H2PReport{}, H2PValues: []H2PReport{}}
	for _, sp := range tr.Spans() {
		out.Spans = append(out.Spans, SpanReport{
			Name:     sp.Name,
			Interval: sp.Interval,
			StartMS:  float64(sp.Start.Microseconds()) / 1000,
			DurMS:    float64(sp.Dur.Microseconds()) / 1000,
			Insts:    sp.Insts,
		})
	}
	if res.H2P != nil {
		out.H2PBranches = h2pReports(res.H2P.Branches, res.Insts)
		out.H2PValues = h2pReports(res.H2P.Values, res.Insts)
		out.H2PBranchPCsDropped = res.H2P.BranchPCsDropped
		out.H2PValuePCsDropped = res.H2P.ValuePCsDropped
	}
	return out
}

func h2pReports(entries []pipeline.H2PEntry, insts uint64) []H2PReport {
	out := make([]H2PReport, 0, len(entries))
	for _, e := range entries {
		r := H2PReport{
			PC:          "0x" + strconv.FormatUint(e.PC, 16),
			Mispredicts: e.Mispredicts,
		}
		if insts > 0 {
			r.MPKI = 1000 * float64(e.Mispredicts) / float64(insts)
		}
		out = append(out, r)
	}
	return out
}

// WriteMetrics writes the process-wide metrics registry in Prometheus
// text exposition format: every counter, gauge and histogram the
// simulator layers maintain (pipeline totals, engine cache and worker
// activity, interval scheduling, trace replay IO). bebop-serve exposes
// exactly this at GET /metrics; bebop-sim/-sweep print it under
// -telemetry.
func WriteMetrics(w io.Writer) error {
	return telemetry.Default.WritePrometheus(w)
}

// WriteSpanTree renders a Report's telemetry spans as an indented tree
// grouped by sampling interval, the human view the -telemetry CLI flag
// prints.
func WriteSpanTree(w io.Writer, t *TelemetryReport) error {
	if t == nil {
		_, err := fmt.Fprintln(w, "no telemetry recorded")
		return err
	}
	lastInterval := -2
	for _, sp := range t.Spans {
		indent := ""
		if sp.Interval >= 0 {
			if sp.Interval != lastInterval {
				if _, err := fmt.Fprintf(w, "  interval %d\n", sp.Interval); err != nil {
					return err
				}
			}
			indent = "    "
		}
		lastInterval = sp.Interval
		insts := ""
		if sp.Insts > 0 {
			insts = fmt.Sprintf("  %d insts", sp.Insts)
		}
		if _, err := fmt.Fprintf(w, "%s%-12s %9.3fms @ %.3fms%s\n",
			indent, sp.Name, sp.DurMS, sp.StartMS, insts); err != nil {
			return err
		}
	}
	return nil
}

package sim

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"

	"bebop/internal/core"
	"bebop/internal/experiments"
	"bebop/internal/specwindow"
	"bebop/internal/trace"
	"bebop/internal/util"
	"bebop/internal/workload"
	"bebop/internal/workload/probe"
)

// RunSpecSchemaVersion is the current RunSpec schema. Specs written by
// this package carry it; specs with a larger version are rejected so a
// new-schema file is never silently misread by an old binary.
//
// v2 added the optional "sampling" block (sampled simulation). v1 specs
// are a strict subset of v2 and are accepted unchanged.
const RunSpecSchemaVersion = 2

// SweepSpecSchemaVersion is the current SweepSpec schema.
const SweepSpecSchemaVersion = 1

// ErrInvalidSpec tags every spec-shape validation failure — malformed
// JSON, mutually exclusive fields, bad budgets, unsupported schema
// versions — so front ends can map the whole class to a client error
// with one errors.Is check. Unknown names are reported separately, as
// *UnknownNameError.
var ErrInvalidSpec = errors.New("invalid spec")

// DefaultInsts is the measured-instruction budget used when a spec or
// builder does not set one: 100K dynamic instructions per workload, the
// laptop-scale budget every CLI defaults to.
const DefaultInsts int64 = 100_000

// RunSpec is the declarative description of one simulation run: workload,
// processor configuration, value predictor and instruction budget. It is
// plain data — JSON round-trippable, diffable, committable — and is the
// one run description every front end consumes: `bebop-sim -spec`,
// `POST /v1/runs` on bebop-serve, and the Go builder (sim.New(...).Spec()
// serializes back to it). A RunSpec fully determines a Report: running
// the same spec twice, in-process or over HTTP, yields bit-identical
// results.
type RunSpec struct {
	// SchemaVersion is RunSpecSchemaVersion (0 is upgraded to it).
	SchemaVersion int `json:"schema_version"`

	// Exactly one of Workload, Trace and Profile selects what to run:
	// Workload names a catalog entry (a Table II synthetic benchmark or,
	// with TraceDir, a recorded trace), Trace is a .bbt file path, and
	// Profile embeds a custom synthetic benchmark inline.
	Workload string   `json:"workload,omitempty"`
	Trace    string   `json:"trace,omitempty"`
	Profile  *Profile `json:"profile,omitempty"`

	// TraceDir adds a directory of .bbt traces to the workload catalog.
	TraceDir string `json:"trace_dir,omitempty"`

	// Config selects the pipeline model: "baseline", "baseline-vp",
	// "eole" or "eole-bebop". The shorthand "<config>/<predictor>"
	// (e.g. "eole-bebop/Medium", "baseline-vp/VTAGE") sets Predictor in
	// the same string; "eole/<Table III name>" is accepted as an alias
	// for "eole-bebop/<name>". Empty means "baseline" (or "eole-bebop"
	// when BeBoP is set).
	Config string `json:"config,omitempty"`

	// Predictor names the value predictor for baseline-vp (see
	// Predictors) or the Table III configuration for eole-bebop (see
	// BeBoPConfigs). Defaults: "D-VTAGE" for baseline-vp, "Medium" for
	// eole-bebop.
	Predictor string `json:"predictor,omitempty"`

	// BeBoP, when set, replaces the named Table III configuration with a
	// custom block-based predictor geometry (Config must be "eole-bebop"
	// or empty).
	BeBoP *BeBoPConfig `json:"bebop,omitempty"`

	// Insts is the measured dynamic instruction budget (0 = DefaultInsts).
	Insts int64 `json:"insts,omitempty"`

	// Warmup is the instruction budget that warms caches and predictors
	// before measurement starts. nil means Insts/2, the paper's
	// methodology; an explicit 0 measures from a cold pipeline.
	Warmup *int64 `json:"warmup,omitempty"`

	// Sampling, when set, estimates the measured region by SMARTS-style
	// sampled simulation instead of simulating it in full detail: evenly
	// spaced intervals are measured cycle-accurately after functional
	// warming, and the report gains an IPC mean with a confidence
	// interval (Report.Sampling). Requires RunSpec schema v2.
	Sampling *SamplingSpec `json:"sampling,omitempty"`
}

// SamplingSpec configures sampled simulation (see core.RunSampled): the
// measured instruction budget is covered by Intervals evenly spaced
// detailed intervals instead of one continuous detailed run.
type SamplingSpec struct {
	// Intervals is the number of measurement intervals (0 = 20; at least
	// 2 are required for a confidence interval).
	Intervals int `json:"intervals,omitempty"`
	// IntervalInsts is the number of instructions measured in detail per
	// interval (0 = insts/(10*intervals): 10% detailed coverage).
	IntervalInsts int64 `json:"interval_insts,omitempty"`
	// Warmup is the functional-warming window before each interval
	// (0 = 8*interval_insts). Ignored for intervals restored from a
	// checkpoint, whose state embeds continuous warming.
	Warmup int64 `json:"warmup,omitempty"`
	// DetailWarmup is the number of detailed-but-unmeasured instructions
	// run between warming and measurement (0 = interval_insts/4).
	DetailWarmup int64 `json:"detail_warmup,omitempty"`
	// Checkpoints amortizes warming across runs through the trace's
	// .ckpt side-file: an existing valid side-file is restored from, a
	// missing or stale one is built (one continuous warming pass) and
	// written next to the trace. Only trace-backed workloads can carry
	// checkpoints.
	Checkpoints bool `json:"checkpoints,omitempty"`
}

// BeBoPConfig is a custom block-based D-VTAGE geometry, the exploration
// knobs of Section VI-B / Fig. 6-7 as data.
type BeBoPConfig struct {
	// NPred is the number of predictions per block entry (paper: 4-8).
	NPred int `json:"npred"`
	// BaseEntries and TaggedEntries size the D-VTAGE base component and
	// each of the six tagged components.
	BaseEntries   int `json:"base_entries"`
	TaggedEntries int `json:"tagged_entries"`
	// StrideBits is the partial stride width (8, 16 or 64).
	StrideBits int `json:"stride_bits"`
	// WindowSize bounds the speculative window: >0 entries, 0 disables
	// it, <0 is unbounded.
	WindowSize int `json:"window_size"`
	// Policy is the squash recovery policy: one of Policies() ("Ideal",
	// "Repred", "DnRDnR", "DnRR"). Empty means "DnRDnR", the paper's
	// choice.
	Policy string `json:"policy,omitempty"`
}

// SweepSpec is the declarative description of an experiment sweep: which
// of the paper's tables/figures to regenerate, over which workloads, at
// what budget. Consumed by `bebop-sweep -spec` and `POST /v1/sweeps`.
type SweepSpec struct {
	// SchemaVersion is SweepSpecSchemaVersion (0 is upgraded to it).
	SchemaVersion int `json:"schema_version"`
	// Experiments lists experiment ids (see Experiments). Empty or
	// ["all"] selects every experiment.
	Experiments []string `json:"experiments,omitempty"`
	// Workloads restricts the sweep to a benchmark subset (empty = the
	// whole catalog).
	Workloads []string `json:"workloads,omitempty"`
	// Insts is the per-workload budget (0 = the runner's default).
	Insts int64 `json:"insts,omitempty"`
	// TraceDir adds a directory of .bbt traces to the workload catalog.
	TraceDir string `json:"trace_dir,omitempty"`
}

// DecodeRunSpec reads one JSON RunSpec. Unknown fields are errors, so a
// typo in a spec file fails loudly instead of silently running defaults.
func DecodeRunSpec(r io.Reader) (RunSpec, error) {
	var spec RunSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return RunSpec{}, fmt.Errorf("sim: %w: malformed RunSpec: %w", ErrInvalidSpec, err)
	}
	return spec, nil
}

// LoadRunSpec reads a JSON RunSpec file.
func LoadRunSpec(path string) (RunSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return RunSpec{}, err
	}
	defer f.Close()
	spec, err := DecodeRunSpec(f)
	if err != nil {
		return RunSpec{}, fmt.Errorf("%s: %w", path, err)
	}
	return spec, nil
}

// DecodeSweepSpec reads one JSON SweepSpec (unknown fields are errors).
func DecodeSweepSpec(r io.Reader) (SweepSpec, error) {
	var spec SweepSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return SweepSpec{}, fmt.Errorf("sim: %w: malformed SweepSpec: %w", ErrInvalidSpec, err)
	}
	return spec, nil
}

// LoadSweepSpec reads a JSON SweepSpec file.
func LoadSweepSpec(path string) (SweepSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return SweepSpec{}, err
	}
	defer f.Close()
	spec, err := DecodeSweepSpec(f)
	if err != nil {
		return SweepSpec{}, fmt.Errorf("%s: %w", path, err)
	}
	return spec, nil
}

// JSON renders the spec as indented JSON (the canonical on-disk form).
func (s RunSpec) JSON() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Validate checks the spec and returns its normalized form: schema
// version stamped, config/predictor shorthands resolved to canonical
// names, defaults (instruction budget, warmup split, predictor) filled
// in. The normalized spec is what Run executes and what Report carries,
// so a validated spec round-trips through JSON unchanged. Errors are
// actionable: unknown names are *UnknownNameError values listing the
// valid names.
func (s RunSpec) Validate() (RunSpec, error) {
	out, _, err := s.validate()
	return out, err
}

// validate is Validate, additionally returning the workload catalog it
// built to check the workload name (nil for trace/profile runs), so Run
// can resolve the source without a second TraceDir scan.
func (s RunSpec) validate() (RunSpec, *workload.Catalog, error) {
	out := s
	switch {
	case out.SchemaVersion >= 0 && out.SchemaVersion <= RunSpecSchemaVersion:
		// Older schemas are strict subsets of the current one; normalize
		// them up so the spec a Report carries always states the schema it
		// was actually run under.
		out.SchemaVersion = RunSpecSchemaVersion
	default:
		return RunSpec{}, nil, fmt.Errorf("sim: %w: RunSpec schema_version %d is not supported by this binary (max %d)",
			ErrInvalidSpec, out.SchemaVersion, RunSpecSchemaVersion)
	}

	// Workload selection: exactly one of workload / trace / profile.
	selected := 0
	for _, set := range []bool{out.Workload != "", out.Trace != "", out.Profile != nil} {
		if set {
			selected++
		}
	}
	switch {
	case selected == 0:
		return RunSpec{}, nil, fmt.Errorf("sim: %w: no workload selected: set one of workload (a catalog name), trace (a .bbt path) or profile (an inline synthetic benchmark)", ErrInvalidSpec)
	case selected > 1:
		return RunSpec{}, nil, fmt.Errorf("sim: %w: workload, trace and profile are mutually exclusive; set exactly one", ErrInvalidSpec)
	}
	if out.Profile != nil && out.Profile.Name == "" {
		return RunSpec{}, nil, fmt.Errorf("sim: %w: inline profile needs a name", ErrInvalidSpec)
	}
	var cat *workload.Catalog
	switch {
	case probe.IsProbeName(out.Workload):
		// Probe workloads are synthesized from their name, not looked up
		// in the catalog: any "probe/<family>/<pressure>" is accepted.
		if _, err := probe.FromName(out.Workload); err != nil {
			return RunSpec{}, nil, fmt.Errorf("sim: %w: %w", ErrInvalidSpec, err)
		}
	case out.Workload != "":
		var err error
		if cat, err = trace.Catalog(out.TraceDir); err != nil {
			return RunSpec{}, nil, err
		}
		if _, ok := cat.Lookup(out.Workload); !ok {
			return RunSpec{}, nil, util.UnknownName("workload", out.Workload, cat.Names())
		}
	}

	// Budget.
	if out.Insts < 0 {
		return RunSpec{}, nil, fmt.Errorf("sim: %w: insts must be positive, got %d", ErrInvalidSpec, out.Insts)
	}
	if out.Insts == 0 {
		out.Insts = DefaultInsts
	}
	if out.Warmup == nil {
		w := out.Insts / 2
		out.Warmup = &w
	} else if *out.Warmup < 0 {
		return RunSpec{}, nil, fmt.Errorf("sim: %w: warmup must be >= 0, got %d", ErrInvalidSpec, *out.Warmup)
	} else {
		w := *out.Warmup // don't alias the caller's int
		out.Warmup = &w
	}

	// Sampling: fill the documented defaults, then check the intervals
	// actually fit the measured region. The normalized block is what Run
	// executes, so a validated spec round-trips unchanged.
	if out.Sampling != nil {
		sp := *out.Sampling // don't alias the caller's struct
		if sp.Intervals == 0 {
			sp.Intervals = 20
		}
		if sp.Intervals < 2 {
			return RunSpec{}, nil, fmt.Errorf("sim: %w: sampling needs at least 2 intervals, got %d", ErrInvalidSpec, sp.Intervals)
		}
		if sp.IntervalInsts == 0 {
			sp.IntervalInsts = out.Insts / (10 * int64(sp.Intervals))
		}
		if sp.IntervalInsts < 1 {
			return RunSpec{}, nil, fmt.Errorf("sim: %w: sampling interval_insts must be positive, got %d (budget %d too small for %d intervals?)",
				ErrInvalidSpec, sp.IntervalInsts, out.Insts, sp.Intervals)
		}
		if sp.Warmup < 0 || sp.DetailWarmup < 0 {
			return RunSpec{}, nil, fmt.Errorf("sim: %w: sampling warmup and detail_warmup must be >= 0, got %d and %d",
				ErrInvalidSpec, sp.Warmup, sp.DetailWarmup)
		}
		if sp.Warmup == 0 {
			sp.Warmup = 8 * sp.IntervalInsts
		}
		if sp.DetailWarmup == 0 {
			sp.DetailWarmup = sp.IntervalInsts / 4
		}
		if stride := out.Insts / int64(sp.Intervals); sp.DetailWarmup+sp.IntervalInsts > stride {
			return RunSpec{}, nil, fmt.Errorf("sim: %w: %d sampling intervals of %d+%d instructions do not fit the measured budget %d (stride %d)",
				ErrInvalidSpec, sp.Intervals, sp.DetailWarmup, sp.IntervalInsts, out.Insts, stride)
		}
		if sp.Checkpoints && out.Profile != nil {
			return RunSpec{}, nil, fmt.Errorf("sim: %w: sampling checkpoints need a trace-backed workload; an inline profile has no file to put the side-file next to", ErrInvalidSpec)
		}
		out.Sampling = &sp
	}

	// Configuration: resolve "<config>/<predictor>" shorthand, defaults
	// and aliases down to the canonical core names.
	cfg, pred := out.Config, out.Predictor
	if i := strings.IndexByte(cfg, '/'); i >= 0 {
		if pred != "" {
			return RunSpec{}, nil, fmt.Errorf("sim: %w: config %q already names a predictor; drop the separate predictor field %q", ErrInvalidSpec, cfg, pred)
		}
		cfg, pred = cfg[:i], cfg[i+1:]
	}
	cfg = strings.ToLower(cfg)
	if cfg == "eole" && pred != "" {
		// "eole/Medium" reads naturally as EOLE with the Medium BeBoP
		// predictor; canonicalize it.
		cfg = "eole-bebop"
	}
	if out.BeBoP != nil {
		if cfg == "" {
			cfg = "eole-bebop"
		}
		if cfg != "eole-bebop" {
			return RunSpec{}, nil, fmt.Errorf("sim: %w: a custom bebop geometry requires config \"eole-bebop\", got %q", ErrInvalidSpec, cfg)
		}
		if pred != "" {
			return RunSpec{}, nil, fmt.Errorf("sim: %w: predictor %q and a custom bebop geometry are mutually exclusive; drop one", ErrInvalidSpec, pred)
		}
		bb := *out.BeBoP
		if bb.Policy == "" {
			bb.Policy = specwindow.PolicyDnRDnR.String()
		}
		if _, ok := specwindow.ParsePolicy(bb.Policy); !ok {
			return RunSpec{}, nil, util.UnknownName("recovery policy", bb.Policy, Policies())
		}
		if bb.NPred <= 0 || bb.BaseEntries <= 0 || bb.TaggedEntries <= 0 || bb.StrideBits <= 0 {
			return RunSpec{}, nil, fmt.Errorf("sim: %w: bebop geometry needs positive npred, base_entries, tagged_entries and stride_bits, got %+v", ErrInvalidSpec, bb)
		}
		out.BeBoP = &bb
	}
	if cfg == "" {
		cfg = "baseline"
	}
	switch cfg {
	case "baseline", "eole":
		if pred != "" {
			return RunSpec{}, nil, fmt.Errorf("sim: %w: config %q takes no predictor, got %q (use baseline-vp or eole-bebop to choose one)", ErrInvalidSpec, cfg, pred)
		}
	case "baseline-vp":
		if pred == "" {
			pred = "D-VTAGE"
		}
		if _, err := core.NewInstPredictor(pred); err != nil {
			return RunSpec{}, nil, util.UnknownName("predictor", pred, core.AllPredictorNames())
		}
	case "eole-bebop":
		if out.BeBoP == nil {
			if pred == "" {
				pred = "Medium"
			}
			if _, err := core.TableIIIByName(pred); err != nil {
				return RunSpec{}, nil, util.UnknownName("Table III config", pred, core.TableIIINames())
			}
		}
	default:
		return RunSpec{}, nil, util.UnknownName("configuration", out.Config, Configs())
	}
	out.Config, out.Predictor = cfg, pred
	return out, cat, nil
}

// Validate checks the sweep spec and returns its normalized form:
// experiment ids lowercased and resolved ("all"/empty expands to every
// experiment), unknown ids and workloads rejected with the valid names.
func (s SweepSpec) Validate() (SweepSpec, error) {
	out := s
	switch {
	case out.SchemaVersion == 0:
		out.SchemaVersion = SweepSpecSchemaVersion
	case out.SchemaVersion > SweepSpecSchemaVersion:
		return SweepSpec{}, fmt.Errorf("sim: %w: SweepSpec schema_version %d is newer than this binary supports (%d)",
			ErrInvalidSpec, out.SchemaVersion, SweepSpecSchemaVersion)
	}
	if out.Insts < 0 {
		return SweepSpec{}, fmt.Errorf("sim: %w: insts must be positive, got %d", ErrInvalidSpec, out.Insts)
	}
	ids := make([]string, 0, len(out.Experiments))
	seen := make(map[string]bool)
	add := func(id string) {
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	for _, id := range out.Experiments {
		id = strings.ToLower(strings.TrimSpace(id))
		if id == "" {
			continue
		}
		if id == "all" {
			for _, k := range experiments.ExperimentIDs() {
				add(k)
			}
			continue
		}
		known := false
		for _, k := range experiments.ExperimentIDs() {
			if id == k {
				known = true
				break
			}
		}
		if !known {
			return SweepSpec{}, util.UnknownName("experiment", id, experiments.ExperimentIDs())
		}
		add(id)
	}
	if len(ids) == 0 {
		ids = experiments.ExperimentIDs()
	}
	out.Experiments = ids
	// Workload names are NOT checked here: only the sweep session knows
	// its catalog (a -trace-dir scanned at Sweeper construction), so the
	// Sweeper validates them against it and reports the real name list.
	return out, nil
}

package sim

import (
	"bebop/internal/workload/probe"
)

// ProbeFamily describes one adversarial geometry-probing workload
// family. Probe workloads are named "probe/<family>/<pressure>" and are
// accepted anywhere a catalog workload name is: RunSpec.Workload,
// WithWorkload, and POST /v1/runs. The pressure is a free integer — the
// Grid lists the default sweep points advertised by ListWorkloads.
//
// Each family is built so its accuracy-vs-pressure curve cliffs exactly
// where the configured predictor geometry says it must (TAGE history
// length and capacity, D-VTAGE stride width, history depth and table
// reach, BeBoP's per-block prediction slots); see the "Probing predictor
// geometry" section of the README.
type ProbeFamily struct {
	// Name identifies the family, e.g. "tage-history".
	Name string `json:"name"`
	// Axis names the pressure knob, e.g. "period" or "blocks".
	Axis string `json:"axis"`
	// Doc is a one-line description of what the family stresses.
	Doc string `json:"doc"`
	// Grid is the default pressure sweep, in increasing order.
	Grid []int `json:"grid"`
}

// ProbeFamilies lists the probe workload families in canonical order.
func ProbeFamilies() []ProbeFamily {
	fams := probe.Families()
	out := make([]ProbeFamily, len(fams))
	for i, f := range fams {
		grid := make([]int, len(f.Grid))
		copy(grid, f.Grid)
		out[i] = ProbeFamily{Name: f.Name, Axis: f.Axis, Doc: f.Doc, Grid: grid}
	}
	return out
}

// ProbeWorkloadName formats the canonical probe workload name for one
// (family, pressure) point, e.g. ProbeWorkloadName("tage-history", 32)
// == "probe/tage-history/32".
func ProbeWorkloadName(family string, pressure int) string {
	return probe.SourceName(family, pressure)
}

package sim

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"bebop/internal/trace"
	"bebop/internal/workload"
)

func TestSampledRunThroughSDK(t *testing.T) {
	s := New(
		WithWorkload("gcc"),
		WithConfig("baseline"),
		WithInsts(40_000),
		WithWarmup(8_000),
		WithSampling(SamplingSpec{Intervals: 4, IntervalInsts: 2_000, Warmup: 4_000, DetailWarmup: 500}),
	)
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.SchemaVersion != ReportSchemaVersion {
		t.Errorf("report schema %d, want %d", rep.SchemaVersion, ReportSchemaVersion)
	}
	if rep.Sampling == nil {
		t.Fatal("sampled run produced no sampling block")
	}
	if rep.Sampling.Intervals != 4 || len(rep.Sampling.IntervalIPCs) != 4 {
		t.Errorf("sampling block %+v, want 4 intervals", rep.Sampling)
	}
	if rep.IPC != rep.Sampling.IPCMean {
		t.Errorf("report IPC %v != sampled mean %v", rep.IPC, rep.Sampling.IPCMean)
	}
	if rep.Sampling.IPCCI95 <= 0 {
		t.Errorf("degenerate confidence interval %v", rep.Sampling.IPCCI95)
	}

	// Same spec, same report — bit-identically, like every other run.
	rep2, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, rep2) {
		t.Errorf("sampled runs of one spec diverge:\n%+v\n%+v", rep, rep2)
	}

	// The normalized spec round-trips through JSON and revalidation.
	spec, err := s.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.SchemaVersion != RunSpecSchemaVersion {
		t.Errorf("normalized spec schema %d, want %d", spec.SchemaVersion, RunSpecSchemaVersion)
	}
	blob, err := spec.JSON()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeRunSpec(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	revalidated, err := decoded.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, revalidated) {
		t.Errorf("validated sampling spec does not round-trip:\n%+v\n%+v", spec, revalidated)
	}
}

func TestSampledCheckpointSideFileLifecycle(t *testing.T) {
	dir := t.TempDir()
	prof, _ := workload.ProfileByName("mcf")
	path := filepath.Join(dir, "mcf"+trace.Ext)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := trace.Record(f, workload.New(prof, 60_000), trace.WriterOptions{Name: "mcf"}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	spec := RunSpec{
		Trace:    path,
		Config:   "eole-bebop/Medium",
		Insts:    40_000,
		Sampling: &SamplingSpec{Intervals: 4, IntervalInsts: 2_000, DetailWarmup: 500, Checkpoints: true},
	}
	rep1, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("first sampled run (builds checkpoints): %v", err)
	}
	ckPath := trace.CheckpointPath(path, "EOLE_4_60/Medium")
	if _, err := os.Stat(ckPath); err != nil {
		t.Fatalf("checkpoint side-file not written: %v", err)
	}
	if rep1.Sampling.CheckpointsUsed != 4 {
		t.Errorf("first run restored %d intervals from checkpoints, want 4", rep1.Sampling.CheckpointsUsed)
	}
	// Second run loads the side-file instead of rebuilding and must
	// reproduce the report bit-identically.
	rep2, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("second sampled run (loads checkpoints): %v", err)
	}
	if !reflect.DeepEqual(rep1, rep2) {
		t.Errorf("checkpoint reuse changes the report:\n%+v\n%+v", rep1, rep2)
	}
}

func TestSamplingSpecValidation(t *testing.T) {
	base := RunSpec{Workload: "gcc", Insts: 40_000}
	cases := []struct {
		name string
		sp   SamplingSpec
		ok   bool
	}{
		{"defaults", SamplingSpec{}, true},
		{"one interval", SamplingSpec{Intervals: 1}, false},
		{"negative warmup", SamplingSpec{Warmup: -1}, false},
		{"negative detail warmup", SamplingSpec{DetailWarmup: -1}, false},
		{"overflows stride", SamplingSpec{Intervals: 4, IntervalInsts: 20_000}, false},
	}
	for _, tc := range cases {
		spec := base
		spec.Sampling = &tc.sp
		_, err := spec.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}

	// Defaults are filled in and the caller's struct is not aliased.
	spec := base
	sp := SamplingSpec{}
	spec.Sampling = &sp
	out, err := spec.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if out.Sampling.Intervals != 20 || out.Sampling.IntervalInsts != 200 ||
		out.Sampling.Warmup != 1600 || out.Sampling.DetailWarmup != 50 {
		t.Errorf("defaults not applied: %+v", out.Sampling)
	}
	if sp != (SamplingSpec{}) {
		t.Errorf("Validate mutated the caller's SamplingSpec: %+v", sp)
	}

	// Checkpoints need a file to live next to.
	inline := RunSpec{Profile: &Profile{Name: "p"}, Insts: 40_000,
		Sampling: &SamplingSpec{Checkpoints: true}}
	if _, err := inline.Validate(); err == nil {
		t.Error("checkpoints over an inline profile accepted")
	}
}

package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"bebop/internal/core"
	"bebop/internal/trace"
	"bebop/internal/workload"
)

func TestRunMatchesCore(t *testing.T) {
	// The facade must be a veneer: a builder run reproduces the internal
	// core entry point bit for bit.
	rep, err := New(
		WithWorkload("swim"),
		WithConfig("eole-bebop/Medium"),
		WithInsts(20_000),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.RunByName("swim", 20_000, core.EOLEBeBoP("Medium", core.MediumConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles != want.Cycles || rep.Insts != want.Insts || rep.IPC != want.IPC ||
		rep.VP != (VPReport{
			Eligible: want.VP.Eligible, Attributed: want.VP.Attributed,
			Used: want.VP.Used, UsedCorrect: want.VP.UsedCorrect,
			SpecWindowHits: want.VP.SpecWindowHits, SpecWindowProbes: want.VP.SpecWindowProbes,
			Coverage: want.VP.Coverage(), Accuracy: want.VP.Accuracy(),
		}) {
		t.Fatalf("facade diverged from core:\nsim:  %+v\ncore: %+v", rep, want)
	}
	if rep.Config != "EOLE_4_60/Medium" {
		t.Fatalf("resolved config = %q, want EOLE_4_60/Medium", rep.Config)
	}
	if rep.Workload != "swim" || rep.SchemaVersion != ReportSchemaVersion {
		t.Fatalf("report identity wrong: %+v", rep)
	}
}

func TestRunSpecRoundTripDeterminism(t *testing.T) {
	s := New(
		WithWorkload("gcc"),
		WithConfig("baseline-vp"),
		WithPredictor("VTAGE"),
		WithInsts(10_000),
	)
	spec, err := s.Spec()
	if err != nil {
		t.Fatal(err)
	}
	// The normalized spec is a fixed point of Validate.
	again, err := spec.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, again) {
		t.Fatalf("Validate is not idempotent:\n1: %+v\n2: %+v", spec, again)
	}
	// JSON round trip preserves the spec exactly.
	blob, err := spec.JSON()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeRunSpec(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, decoded) {
		t.Fatalf("JSON round trip changed the spec:\nbefore: %+v\nafter:  %+v", spec, decoded)
	}
	// And the replayed spec reproduces the builder run bit-identically.
	rep1, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Run(context.Background(), decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep1, rep2) {
		t.Fatalf("replayed spec diverged:\nbuilder: %+v\nspec:    %+v", rep1, rep2)
	}
}

func TestConfigShorthands(t *testing.T) {
	cases := []struct {
		in        RunSpec
		cfg, pred string
	}{
		{RunSpec{Workload: "swim"}, "baseline", ""},
		{RunSpec{Workload: "swim", Config: "baseline-vp"}, "baseline-vp", "D-VTAGE"},
		{RunSpec{Workload: "swim", Config: "baseline-vp/2d-Stride"}, "baseline-vp", "2d-Stride"},
		{RunSpec{Workload: "swim", Config: "EOLE"}, "eole", ""},
		{RunSpec{Workload: "swim", Config: "EOLE/Medium"}, "eole-bebop", "Medium"},
		{RunSpec{Workload: "swim", Config: "eole-bebop"}, "eole-bebop", "Medium"},
		{RunSpec{Workload: "swim", Config: "eole-bebop/Large"}, "eole-bebop", "Large"},
	}
	for _, c := range cases {
		got, err := c.in.Validate()
		if err != nil {
			t.Fatalf("%+v: %v", c.in, err)
		}
		if got.Config != c.cfg || got.Predictor != c.pred {
			t.Fatalf("%q/%q normalized to %q/%q, want %q/%q",
				c.in.Config, c.in.Predictor, got.Config, got.Predictor, c.cfg, c.pred)
		}
	}
}

func TestValidationErrorsListValidNames(t *testing.T) {
	cases := []struct {
		spec RunSpec
		kind string
		name string // a name the error text must list
	}{
		{RunSpec{Workload: "nope"}, "workload", "swim"},
		{RunSpec{Workload: "swim", Config: "nope"}, "configuration", "eole-bebop"},
		{RunSpec{Workload: "swim", Config: "baseline-vp/nope"}, "predictor", "D-FCM"},
		{RunSpec{Workload: "swim", Config: "eole-bebop/nope"}, "Table III config", "Small_4p"},
		{RunSpec{Workload: "swim", BeBoP: &BeBoPConfig{NPred: 6, BaseEntries: 64, TaggedEntries: 64, StrideBits: 8, Policy: "nope"}}, "recovery policy", "DnRDnR"},
	}
	for _, c := range cases {
		_, err := c.spec.Validate()
		var ue *UnknownNameError
		if !errors.As(err, &ue) {
			t.Fatalf("%+v: got %v, want UnknownNameError", c.spec, err)
		}
		if ue.Kind != c.kind {
			t.Fatalf("%+v: kind = %q, want %q", c.spec, ue.Kind, c.kind)
		}
		if !strings.Contains(err.Error(), c.name) {
			t.Fatalf("%+v: error %q does not list %q", c.spec, err, c.name)
		}
	}

	// Structural errors are plain but actionable.
	for _, spec := range []RunSpec{
		{},
		{Workload: "swim", Trace: "x.bbt"},
		{Workload: "swim", Config: "baseline", Predictor: "VTAGE"},
		{Workload: "swim", Config: "eole-bebop/Medium", BeBoP: &BeBoPConfig{NPred: 6, BaseEntries: 64, TaggedEntries: 64, StrideBits: 8}},
		{Workload: "swim", Insts: -1},
		{Workload: "swim", SchemaVersion: RunSpecSchemaVersion + 1},
	} {
		if _, err := spec.Validate(); err == nil {
			t.Fatalf("spec %+v validated, want error", spec)
		}
	}
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	_, err := DecodeRunSpec(strings.NewReader(`{"workload":"swim","instz":5}`))
	if err == nil || !strings.Contains(err.Error(), "instz") {
		t.Fatalf("unknown field not rejected: %v", err)
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		// A budget this large runs for minutes if cancellation fails.
		_, err := New(WithWorkload("swim"), WithConfig("baseline"), WithInsts(50_000_000)).Run(ctx)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
		if el := time.Since(start); el > 10*time.Second {
			t.Fatalf("cancellation took %s", el)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not stop after cancellation")
	}
}

func TestWarmupOption(t *testing.T) {
	warm, err := New(WithWorkload("swim"), WithInsts(10_000)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := New(WithWorkload("swim"), WithInsts(10_000), WithWarmup(0)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if *warm.Spec.Warmup != 5_000 || *cold.Spec.Warmup != 0 {
		t.Fatalf("warmup budgets: warm %d cold %d", *warm.Spec.Warmup, *cold.Spec.Warmup)
	}
	if warm.Cycles == cold.Cycles {
		t.Fatal("cold-pipeline run reported identical cycles to a warmed run; warmup option had no effect")
	}
}

func TestProgressFires(t *testing.T) {
	var calls int
	var lastStreamed, lastTotal int64
	_, err := New(
		WithWorkload("swim"),
		WithInsts(10_000),
		WithProgress(func(streamed, total int64) {
			calls++
			lastStreamed, lastTotal = streamed, total
		}),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("progress callback never fired")
	}
	if lastTotal != 15_000 || lastStreamed == 0 || lastStreamed > lastTotal {
		t.Fatalf("last progress %d/%d, want total 15000", lastStreamed, lastTotal)
	}
}

func TestCustomProfileAndBeBoP(t *testing.T) {
	prof := Profiles()[0]
	prof.Name = "custom-gzip"
	rep, err := New(
		WithProfile(prof),
		WithBeBoP(BeBoPConfig{NPred: 6, BaseEntries: 128, TaggedEntries: 64, StrideBits: 8, WindowSize: 32}),
		WithInsts(10_000),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workload != "custom-gzip" {
		t.Fatalf("workload = %q", rep.Workload)
	}
	if !strings.Contains(rep.Config, "custom-6p-128b-64t-8s-w32-DnRDnR") {
		t.Fatalf("custom geometry not reflected in config name: %q", rep.Config)
	}
	if rep.VPStorageBits == 0 {
		t.Fatal("custom BeBoP run reported no predictor storage")
	}
	kb, err := StorageKBOf(rep.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if kb != rep.VPStorageKB() {
		t.Fatalf("StorageKBOf %.3f != report %.3f", kb, rep.VPStorageKB())
	}
}

func TestSweeper(t *testing.T) {
	sw, err := NewSweeper(SweepOptions{Insts: 5_000})
	if err != nil {
		t.Fatal(err)
	}
	// table3 is static storage accounting: no simulations, fast.
	spec := SweepSpec{Experiments: []string{"table3"}}
	tables, err := sw.Tables(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || tables[0].ID != "table3" || len(tables[0].Rows) != 4 {
		t.Fatalf("unexpected table3 report: %+v", tables)
	}
	var buf bytes.Buffer
	if err := sw.Write(context.Background(), &buf, "json", spec); err != nil {
		t.Fatal(err)
	}
	var decoded []ExperimentTable
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("sweep JSON does not parse: %v", err)
	}
	buf.Reset()
	if err := sw.Write(context.Background(), &buf, "text", spec); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table III") {
		t.Fatalf("text output missing title: %q", buf.String())
	}

	var ue *UnknownNameError
	if _, err := sw.Tables(context.Background(), SweepSpec{Experiments: []string{"nope"}}); !errors.As(err, &ue) || ue.Kind != "experiment" {
		t.Fatalf("unknown experiment: got %v", err)
	}
	if _, err := sw.Tables(context.Background(), SweepSpec{Workloads: []string{"nope"}}); !errors.As(err, &ue) || ue.Kind != "workload" {
		t.Fatalf("unknown workload: got %v", err)
	}
	var be *BudgetError
	if _, err := sw.Tables(context.Background(), SweepSpec{Insts: 999}); !errors.As(err, &be) {
		t.Fatalf("budget mismatch: got %v", err)
	}
}

func TestSweeperTraceWorkloads(t *testing.T) {
	// A SweepSpec naming a trace workload must validate against the
	// session's catalog (which scanned -trace-dir), not a catalog
	// re-derived from the spec — the spec usually doesn't carry
	// trace_dir when the Sweeper already did.
	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, "tinygcc.bbt"))
	if err != nil {
		t.Fatal(err)
	}
	g, _ := workload.NewByName("gcc", 3_000)
	if _, _, err := trace.Record(f, g, trace.WriterOptions{Name: "gcc", Seed: g.Profile().Seed}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	sw, err := NewSweeper(SweepOptions{Insts: 1_000, TraceDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range sw.Workloads() {
		if n == "tinygcc" {
			found = true
		}
	}
	if !found {
		t.Fatalf("trace workload missing from sweeper catalog: %v", sw.Workloads())
	}
	// table2 simulates the selected workloads; restricting to the trace
	// name must be accepted and run.
	tables, err := sw.Tables(context.Background(), SweepSpec{
		Experiments: []string{"table2"},
		Workloads:   []string{"tinygcc"},
	})
	if err != nil {
		t.Fatalf("sweep over a trace workload rejected: %v", err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 1 || tables[0].Rows[0].Label != "tinygcc" {
		t.Fatalf("unexpected table: %+v", tables)
	}
}

func TestSweepSpecDedupesExperiments(t *testing.T) {
	spec, err := SweepSpec{Experiments: []string{"fig8", "fig8", "all"}}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, id := range spec.Experiments {
		seen[id]++
	}
	if seen["fig8"] != 1 || len(spec.Experiments) != len(Experiments()) {
		t.Fatalf("experiment ids not deduped: %v", spec.Experiments)
	}
}

func TestNamesAndVersion(t *testing.T) {
	if v := Version(); !strings.HasPrefix(v, "bebop") {
		t.Fatalf("Version() = %q", v)
	}
	if len(Workloads()) != 36 {
		t.Fatalf("Workloads() = %d names, want 36", len(Workloads()))
	}
	infos, err := ListWorkloads("")
	if err != nil || len(infos) <= 36 || infos[0].Kind != "synthetic" {
		t.Fatalf("ListWorkloads: %v, %d", err, len(infos))
	}
	probes := 0
	for _, info := range infos {
		if info.Kind == "probe" {
			probes++
		}
	}
	var gridPoints int
	for _, f := range ProbeFamilies() {
		gridPoints += len(f.Grid)
	}
	if probes != gridPoints || len(infos) != 36+gridPoints {
		t.Fatalf("ListWorkloads lists %d probe workloads (of %d total), want %d grid points",
			probes, len(infos), gridPoints)
	}
	for _, set := range [][]string{Configs(), Predictors(), InstPredictors(), BeBoPConfigs(), Policies(), Experiments(), Formats()} {
		if len(set) == 0 {
			t.Fatal("empty name set")
		}
	}
	p, err := NewPredictor("D-VTAGE")
	if err != nil || p.Name() == "" {
		t.Fatalf("NewPredictor: %v", err)
	}
	if _, err := NewPredictor("nope"); err == nil {
		t.Fatal("NewPredictor accepted a bad name")
	}
}

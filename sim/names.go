package sim

import (
	"bebop/internal/core"
	"bebop/internal/engine"
	"bebop/internal/experiments"
	"bebop/internal/specwindow"
	"bebop/internal/trace"
	"bebop/internal/util"
	"bebop/internal/workload"
	"bebop/internal/workload/probe"
)

// UnknownNameError is returned whenever a user-supplied name — workload,
// configuration, predictor, experiment, recovery policy — is not in the
// valid set. Error() always lists the valid names; front ends map it to
// a client error (HTTP 400, exit 2) with errors.As.
type UnknownNameError = util.UnknownNameError

// Workloads lists the synthetic Table II workload names in paper order.
func Workloads() []string { return workload.Names() }

// WorkloadInfo describes one catalog workload for listings.
type WorkloadInfo struct {
	Name string `json:"name"`
	// Kind is "synthetic" for Table II profiles, "trace" for .bbt files,
	// "probe" for geometry-probing workloads.
	Kind string `json:"kind"`
	// Suite, INT and PaperIPC describe synthetic profiles (Table II).
	Suite    string  `json:"suite,omitempty"`
	INT      bool    `json:"int,omitempty"`
	PaperIPC float64 `json:"paper_ipc,omitempty"`
	// Path locates a trace workload's .bbt file.
	Path string `json:"path,omitempty"`
	// Axis and Pressure describe probe workloads: the family's pressure
	// knob and this point's value on it (see ProbeFamilies).
	Axis     string `json:"axis,omitempty"`
	Pressure int    `json:"pressure,omitempty"`
}

// ListWorkloads describes the full workload catalog: the 36 synthetic
// profiles, the probe families' default-grid points, plus, when traceDir
// is non-empty, the .bbt traces found there. Probe workloads beyond the
// default grids are also runnable — any "probe/<family>/<pressure>" name
// is accepted — but only grid points are listed.
func ListWorkloads(traceDir string) ([]WorkloadInfo, error) {
	cat, err := trace.Catalog(traceDir)
	if err != nil {
		return nil, err
	}
	out := make([]WorkloadInfo, 0, cat.Len())
	for _, name := range cat.Names() {
		src, _ := cat.Lookup(name)
		switch s := src.(type) {
		case workload.ProfileSource:
			out = append(out, WorkloadInfo{
				Name: name, Kind: "synthetic",
				Suite: s.Prof.Suite, INT: s.Prof.INT, PaperIPC: s.Prof.PaperIPC,
			})
		case trace.FileSource:
			out = append(out, WorkloadInfo{Name: name, Kind: "trace", Path: s.Path})
		default:
			out = append(out, WorkloadInfo{Name: name, Kind: "unknown"})
		}
	}
	for _, f := range probe.Families() {
		for _, p := range f.Grid {
			out = append(out, WorkloadInfo{
				Name: probe.SourceName(f.Name, p), Kind: "probe",
				Axis: f.Axis, Pressure: p,
			})
		}
	}
	return out, nil
}

// Configs lists the pipeline configuration names WithConfig accepts.
func Configs() []string { return core.ConfigNames() }

// Predictors lists every per-instruction value predictor name accepted
// by WithPredictor under the baseline-vp configuration.
func Predictors() []string { return core.AllPredictorNames() }

// InstPredictors lists the per-instruction predictors compared in
// Fig. 5(a), the headline contenders.
func InstPredictors() []string { return core.InstPredictorNames() }

// BeBoPConfigs lists the named Table III configurations accepted by
// WithPredictor under the eole-bebop configuration.
func BeBoPConfigs() []string { return core.TableIIINames() }

// Policies lists the speculative-window recovery policy names accepted
// in BeBoPConfig.Policy.
func Policies() []string {
	return []string{
		specwindow.PolicyIdeal.String(),
		specwindow.PolicyRepred.String(),
		specwindow.PolicyDnRDnR.String(),
		specwindow.PolicyDnRR.String(),
	}
}

// Experiments lists the experiment ids a SweepSpec accepts — the paper's
// tables and figures.
func Experiments() []string { return experiments.ExperimentIDs() }

// Formats lists the sweep output formats (text, json, csv).
func Formats() []string { return engine.Formats() }

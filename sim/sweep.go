package sim

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"time"

	"bebop/internal/engine"
	"bebop/internal/experiments"
	"bebop/internal/trace"
	"bebop/internal/util"
)

// SweepOptions configures a Sweeper session. The instruction budget and
// workload catalog are fixed per Sweeper because results are cached by
// (configuration, workload): one budget per cache keeps entries
// comparable across experiments and, for the HTTP service, across
// requests.
type SweepOptions struct {
	// Insts is the per-workload measured budget (0 = DefaultInsts).
	Insts int64
	// TraceDir adds a directory of .bbt traces to the workload catalog.
	TraceDir string
	// Parallel bounds concurrent simulations (0 = GOMAXPROCS).
	Parallel int
	// Progress, when set, receives one event per completed simulation.
	Progress func(Progress)
}

// Progress is one completed simulation inside a sweep.
type Progress struct {
	// Config is the configuration key; Workload the benchmark.
	Config   string
	Workload string
	// Cached reports a cache hit (no simulation ran).
	Cached  bool
	Elapsed time.Duration
	// Completed / Total count scheduled simulations in the current batch.
	Completed, Total int
	// Err is non-nil when the simulation failed (e.g. cancellation).
	Err error
}

// EngineStats is a snapshot of the sweep engine's shared result cache.
type EngineStats struct {
	Workers      int    `json:"workers"`
	CacheEntries int    `json:"cache_entries"`
	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
	Runs         uint64 `json:"runs"`
}

// Sweeper regenerates the paper's tables and figures (see Experiments)
// over a shared caching engine: baselines reused by several experiments
// simulate once per Sweeper. Methods are safe for concurrent use; each
// call derives a request-scoped view over the shared cache.
type Sweeper struct {
	opts   SweepOptions
	runner *experiments.Runner
	names  []string
}

// NewSweeper builds a sweep session (scanning TraceDir, if set).
func NewSweeper(opts SweepOptions) (*Sweeper, error) {
	if opts.Insts == 0 {
		opts.Insts = DefaultInsts
	}
	cat, err := trace.Catalog(opts.TraceDir)
	if err != nil {
		return nil, err
	}
	ropts := experiments.Options{
		Insts:    opts.Insts,
		Parallel: opts.Parallel,
		Catalog:  cat,
	}
	if fn := opts.Progress; fn != nil {
		ropts.OnProgress = func(ev engine.Event) {
			if ev.Kind != engine.EventDone {
				return
			}
			fn(Progress{
				Config: ev.Key, Workload: ev.Bench,
				Cached: ev.Cached, Elapsed: ev.Elapsed,
				Completed: ev.Completed, Total: ev.Total,
				Err: ev.Err,
			})
		}
	}
	return &Sweeper{
		opts:   opts,
		runner: experiments.NewRunner(ropts),
		names:  cat.Names(),
	}, nil
}

// Insts reports the per-workload budget this Sweeper runs at.
func (s *Sweeper) Insts() int64 { return s.opts.Insts }

// Workloads lists the catalog workload names in catalog order.
func (s *Sweeper) Workloads() []string { return append([]string(nil), s.names...) }

// Stats snapshots the shared engine cache.
func (s *Sweeper) Stats() EngineStats {
	st := s.runner.Engine().Stats()
	return EngineStats{
		Workers:      s.runner.Engine().Workers(),
		CacheEntries: st.Entries,
		CacheHits:    st.Hits,
		CacheMisses:  st.Misses,
		Runs:         st.Runs,
	}
}

// view validates spec against this Sweeper and derives the
// request-scoped runner executing it.
func (s *Sweeper) view(ctx context.Context, spec SweepSpec) (*experiments.Runner, SweepSpec, error) {
	spec, err := spec.Validate()
	if err != nil {
		return nil, SweepSpec{}, err
	}
	if spec.Insts != 0 && spec.Insts != s.opts.Insts {
		return nil, SweepSpec{}, &BudgetError{Want: spec.Insts, Fixed: s.opts.Insts}
	}
	if spec.TraceDir != "" && spec.TraceDir != s.opts.TraceDir {
		return nil, SweepSpec{}, &BudgetError{TraceDir: true, WantDir: spec.TraceDir, FixedDir: s.opts.TraceDir}
	}
	for _, w := range spec.Workloads {
		found := false
		for _, n := range s.names {
			if n == w {
				found = true
				break
			}
		}
		if !found {
			return nil, SweepSpec{}, util.UnknownName("workload", w, s.names)
		}
	}
	r := s.runner.WithContext(ctx)
	if len(spec.Workloads) > 0 {
		r = r.WithWorkloads(spec.Workloads)
	}
	return r, spec, nil
}

// Tables runs the sweep and returns one table per experiment, in spec
// order — the machine-readable form the JSON/CSV emitters and the HTTP
// service render.
func (s *Sweeper) Tables(ctx context.Context, spec SweepSpec) ([]ExperimentTable, error) {
	r, spec, err := s.view(ctx, spec)
	if err != nil {
		return nil, err
	}
	return r.Reports(spec.Experiments)
}

// Write runs the sweep and renders it to w as "text", "json" or "csv"
// (see Formats). Output is buffered per run, so a mid-sweep failure
// (e.g. cancellation) yields an error, not a partial document.
func (s *Sweeper) Write(ctx context.Context, w io.Writer, format string, spec SweepSpec) error {
	f, err := engine.ParseFormat(format)
	if err != nil {
		return util.UnknownName("format", format, engine.Formats())
	}
	r, spec, err := s.view(ctx, spec)
	if err != nil {
		return err
	}
	if f == engine.FormatText {
		var buf bytes.Buffer
		for _, id := range spec.Experiments {
			if err := r.RunAndRender(&buf, id); err != nil {
				return err
			}
			buf.WriteByte('\n')
		}
		_, err := w.Write(buf.Bytes())
		return err
	}
	reports, err := r.Reports(spec.Experiments)
	if err != nil {
		return err
	}
	return f.Write(w, reports...)
}

// ExperimentTable is one rendered experiment: a labelled table (columns
// + rows) that text, JSON and CSV emitters all consume.
type ExperimentTable = engine.Report

// ExperimentRow is one labelled row of an ExperimentTable.
type ExperimentRow = engine.Row

// BudgetError reports a SweepSpec that asks for a different fixed
// per-session resource (instruction budget or trace directory) than the
// Sweeper was built with. The HTTP service maps it to a client error:
// restart the server, or drop the field from the spec.
type BudgetError struct {
	Want, Fixed int64
	TraceDir    bool
	WantDir     string
	FixedDir    string
}

// Error implements error.
func (e *BudgetError) Error() string {
	if e.TraceDir {
		return fmt.Sprintf("sim: this sweep session scans trace_dir %q; spec asks for %q (drop trace_dir from the spec or restart with -trace-dir)",
			e.FixedDir, e.WantDir)
	}
	return fmt.Sprintf("sim: this sweep session runs a fixed budget of %d instructions per workload; spec asks for %d (drop insts from the spec or restart with -n)",
		e.Fixed, e.Want)
}

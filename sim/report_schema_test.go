package sim

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with the current output")

// reportSchemaPaths renders the full sorted set of JSON key paths a
// fully-populated Report emits — the wire schema as a comparable string.
func reportSchemaPaths(t *testing.T) string {
	t.Helper()
	var rep Report
	fillValue(reflect.ValueOf(&rep).Elem())
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	var paths []string
	collectPaths("", decoded, &paths)
	sort.Strings(paths)
	return strings.Join(paths, "\n") + "\n"
}

// TestReportSchemaGolden pins the Report v3 JSON wire format: the full
// set of key paths a fully-populated Report emits, in testdata/
// report_schema_v3.golden. Reports are consumed outside this repo
// (result files, bebop-serve clients), so adding, renaming or removing
// a field is a schema change: it must fail here first, and shipping it
// means bumping ReportSchemaVersion and regenerating the golden with
// `go test ./sim -run TestReportSchemaGolden -update`.
func TestReportSchemaGolden(t *testing.T) {
	got := reportSchemaPaths(t)

	golden := filepath.Join("testdata", "report_schema_v3.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if got != string(want) {
		t.Fatalf("Report JSON schema changed — if intended, bump ReportSchemaVersion and regenerate with -update.\ndiff (got vs %s):\n%s",
			golden, pathDiff(got, string(want)))
	}
}

// TestReportSchemaV1Compat pins backward compatibility of the v2 bump:
// every key path a v1 Report emitted must still be present, byte for
// byte, in the v2 schema. v2 is allowed to add paths (the sampling
// blocks); it must never drop or rename a v1 path, or every existing
// consumer of result files breaks. The v1 golden is frozen history —
// never regenerate it.
func TestReportSchemaV1Compat(t *testing.T) {
	v1, err := os.ReadFile(filepath.Join("testdata", "report_schema_v1.golden"))
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, p := range strings.Split(strings.TrimSpace(reportSchemaPaths(t)), "\n") {
		got[p] = true
	}
	for _, p := range strings.Split(strings.TrimSpace(string(v1)), "\n") {
		if !got[p] {
			t.Errorf("v1 schema path %q is gone from the current Report schema", p)
		}
	}
}

// TestReportSchemaV2Compat pins backward compatibility of the v3 bump:
// every key path a v2 Report emitted must still be present in the v3
// schema. v3 is allowed to add paths (the telemetry block); it must
// never drop or rename a v2 path. The v2 golden is frozen history —
// never regenerate it.
func TestReportSchemaV2Compat(t *testing.T) {
	v2, err := os.ReadFile(filepath.Join("testdata", "report_schema_v2.golden"))
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, p := range strings.Split(strings.TrimSpace(reportSchemaPaths(t)), "\n") {
		got[p] = true
	}
	for _, p := range strings.Split(strings.TrimSpace(string(v2)), "\n") {
		if !got[p] {
			t.Errorf("v2 schema path %q is gone from the current Report schema", p)
		}
	}
}

// TestReportSchemaSnakeCase checks every sim-owned JSON key is
// snake_case. The spec.profile subtree is exempt: workload.Profile
// (re-exported as sim.Profile) marshals with Go field names, and that
// encoding is pinned by the golden above.
func TestReportSchemaSnakeCase(t *testing.T) {
	var rep Report
	fillValue(reflect.ValueOf(&rep).Elem())
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	var paths []string
	collectPaths("", decoded, &paths)
	snake := regexp.MustCompile(`^[a-z0-9_]+$`)
	for _, p := range paths {
		if strings.HasPrefix(p, "spec.profile.") {
			continue
		}
		for _, seg := range strings.Split(p, ".") {
			if seg != "[]" && !snake.MatchString(seg) {
				t.Errorf("JSON key %q in path %q is not snake_case", seg, p)
			}
		}
	}
}

// fillValue sets every exported field reachable from v to a non-zero
// value, so omitempty fields still appear in the marshaled JSON and the
// golden pins the complete field set (a newly added field changes the
// output without any test edit).
func fillValue(v reflect.Value) {
	switch v.Kind() {
	case reflect.String:
		v.SetString("x")
	case reflect.Bool:
		v.SetBool(true)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(1)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(1)
	case reflect.Float32, reflect.Float64:
		v.SetFloat(1.5)
	case reflect.Pointer:
		v.Set(reflect.New(v.Type().Elem()))
		fillValue(v.Elem())
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if f := v.Field(i); f.CanSet() {
				fillValue(f)
			}
		}
	case reflect.Slice:
		v.Set(reflect.MakeSlice(v.Type(), 1, 1))
		fillValue(v.Index(0))
	case reflect.Map:
		v.Set(reflect.MakeMap(v.Type()))
		key := reflect.New(v.Type().Key()).Elem()
		val := reflect.New(v.Type().Elem()).Elem()
		fillValue(key)
		fillValue(val)
		v.SetMapIndex(key, val)
	}
}

// collectPaths flattens decoded JSON into dotted key paths ("vp.used",
// "spec.bebop.npred"); array elements contribute a "[]" segment.
func collectPaths(prefix string, v any, out *[]string) {
	switch val := v.(type) {
	case map[string]any:
		for k, child := range val {
			path := k
			if prefix != "" {
				path = prefix + "." + k
			}
			*out = append(*out, path)
			collectPaths(path, child, out)
		}
	case []any:
		if len(val) > 0 {
			collectPaths(prefix+".[]", val[0], out)
		}
	}
}

// pathDiff renders the set difference between two newline-separated
// path lists, so a schema failure names the exact keys that moved.
func pathDiff(got, want string) string {
	gotSet := map[string]bool{}
	for _, p := range strings.Split(strings.TrimSpace(got), "\n") {
		gotSet[p] = true
	}
	wantSet := map[string]bool{}
	for _, p := range strings.Split(strings.TrimSpace(want), "\n") {
		wantSet[p] = true
	}
	var b strings.Builder
	for p := range gotSet {
		if !wantSet[p] {
			b.WriteString("+ " + p + "\n")
		}
	}
	for p := range wantSet {
		if !gotSet[p] {
			b.WriteString("- " + p + "\n")
		}
	}
	if b.Len() == 0 {
		return "(ordering difference only)"
	}
	return b.String()
}

// Package sim is the public SDK of the BeBoP reproduction: the stable,
// versioned surface through which every consumer — the five cmd/
// binaries, the examples, the HTTP service and external importers — runs
// simulations. Everything under bebop/internal/ is free to change;
// this package is not.
//
// It has three pillars:
//
//   - A functional-options builder for one simulation run:
//
//     rep, err := sim.New(
//     sim.WithWorkload("mcf"),
//     sim.WithConfig("eole-bebop/Medium"),
//     sim.WithInsts(200_000),
//     ).Run(ctx)
//
//     Run is context-cancellable mid-simulation and returns a Report, a
//     flattened, schema-versioned result with an explicit JSON encoding.
//
//   - A declarative RunSpec / SweepSpec (spec.go): the same run described
//     as JSON data, consumed by `bebop-sim -spec`, `bebop-sweep -spec`
//     and the bebop-serve v1 REST API. sim.New(...).Spec() serializes a
//     builder back to the spec that reproduces its run bit-identically.
//
//   - A Sweeper (sweep.go) regenerating the paper's tables and figures
//     over the shared caching engine.
//
// The package also re-exports the names every front end needs for help
// text and validation (names.go), the workload-profile and predictor
// types advanced users build on (compat.go), and the build-version
// helper shared by all commands (version.go).
package sim

import (
	"context"
	"fmt"

	"bebop/internal/bebop"
	"bebop/internal/core"
	"bebop/internal/pipeline"
	"bebop/internal/specwindow"
	"bebop/internal/telemetry"
	"bebop/internal/trace"
	"bebop/internal/util"
	"bebop/internal/workload"
	"bebop/internal/workload/probe"
)

// Checkpoint side-file outcomes: a validated side-file restores for
// free; anything else pays a continuous functional-warming pass.
var (
	mCkptReused = telemetry.Default.Counter(`bebop_sim_checkpoint_files_total{outcome="reused"}`,
		"Checkpoint side-file resolutions by outcome.")
	mCkptRebuilt = telemetry.Default.Counter(`bebop_sim_checkpoint_files_total{outcome="rebuilt"}`,
		"Checkpoint side-file resolutions by outcome.")
)

// Sim is a configured simulation, built with New. The zero value is not
// usable.
type Sim struct {
	spec      RunSpec
	progress  func(streamed, total int64)
	telemetry bool
}

// Option configures a Sim.
type Option func(*Sim)

// New assembles a simulation from options. Nothing is validated until
// Spec or Run is called, so options can be applied in any order.
func New(opts ...Option) *Sim {
	s := &Sim{}
	for _, o := range opts {
		o(s)
	}
	return s
}

// FromSpec builds a Sim that runs the given declarative spec. Observer
// options (WithProgress, WithTelemetry) may be layered on top; options
// that alter the spec itself apply too, but a spec is usually complete.
func FromSpec(spec RunSpec, opts ...Option) *Sim {
	s := &Sim{spec: spec}
	for _, o := range opts {
		o(s)
	}
	return s
}

// WithWorkload selects a catalog workload by name: a Table II synthetic
// benchmark, or a recorded trace when combined with WithTraceDir.
func WithWorkload(name string) Option {
	return func(s *Sim) { s.spec.Workload = name }
}

// WithTrace replays a recorded .bbt trace file.
func WithTrace(path string) Option {
	return func(s *Sim) { s.spec.Trace = path }
}

// WithProfile runs a custom synthetic benchmark profile.
func WithProfile(p Profile) Option {
	return func(s *Sim) { s.spec.Profile = &p }
}

// WithTraceDir adds a directory of .bbt traces to the workload catalog.
func WithTraceDir(dir string) Option {
	return func(s *Sim) { s.spec.TraceDir = dir }
}

// WithConfig selects the pipeline model: "baseline", "baseline-vp",
// "eole" or "eole-bebop", optionally with the predictor inline as
// "<config>/<predictor>" (e.g. "eole-bebop/Medium"). See RunSpec.Config.
func WithConfig(name string) Option {
	return func(s *Sim) { s.spec.Config = name }
}

// WithPredictor names the value predictor (baseline-vp) or Table III
// configuration (eole-bebop). See RunSpec.Predictor.
func WithPredictor(name string) Option {
	return func(s *Sim) { s.spec.Predictor = name }
}

// WithBeBoP runs EOLE with a custom block-based predictor geometry
// instead of a named Table III configuration.
func WithBeBoP(cfg BeBoPConfig) Option {
	return func(s *Sim) { s.spec.BeBoP = &cfg }
}

// WithInsts sets the measured dynamic instruction budget.
func WithInsts(n int64) Option {
	return func(s *Sim) { s.spec.Insts = n }
}

// WithWarmup sets the warmup instruction budget explicitly (default:
// half the measured budget; 0 measures from a cold pipeline).
func WithWarmup(n int64) Option {
	return func(s *Sim) { s.spec.Warmup = &n }
}

// WithSampling estimates the measured region by SMARTS-style sampled
// simulation instead of one continuous detailed run: the report gains
// an IPC mean with a 95% confidence interval (Report.Sampling). The
// zero value of every SamplingSpec field selects a documented default.
func WithSampling(sp SamplingSpec) Option {
	return func(s *Sim) { s.spec.Sampling = &sp }
}

// WithProgress streams coarse progress: for plain runs fn is called
// about every 1K simulated instructions with the count streamed so far
// and the total warmup+measure budget; for sampled runs it is called
// once per completed interval with detailed-instruction counts. fn runs
// on simulation goroutines (serialized) and is not part of the spec
// (progress is an observer, not run configuration).
func WithProgress(fn func(streamed, total int64)) Option {
	return func(s *Sim) { s.progress = fn }
}

// Spec validates the accumulated options and returns the normalized
// RunSpec describing this simulation — the JSON-serializable value that
// reproduces this run through `bebop-sim -spec` or `POST /v1/runs`.
func (s *Sim) Spec() (RunSpec, error) { return s.spec.Validate() }

// Run validates and executes the simulation. It honors ctx mid-run: a
// cancelled context stops the simulation within ~1K instructions and
// returns ctx's error. Identical specs produce bit-identical Reports.
func (s *Sim) Run(ctx context.Context) (Report, error) {
	spec, cat, err := s.spec.validate()
	if err != nil {
		return Report{}, err
	}
	src, err := sourceFor(spec, cat)
	if err != nil {
		return Report{}, err
	}
	mk, err := factoryFor(spec)
	if err != nil {
		return Report{}, err
	}
	var tr *telemetry.Trace
	if s.telemetry {
		// Telemetry rides observer seams only: a trace in the context for
		// phase spans, and H2P collection in the pipeline config — which
		// attributes existing misprediction counts without perturbing any
		// simulated outcome (pinned by TestH2PIsPureObserver and the
		// telemetry determinism test).
		tr = telemetry.NewTrace()
		ctx = telemetry.WithTrace(ctx, tr)
		inner := mk
		mk = func() pipeline.Config {
			cfg := inner()
			cfg.CollectH2P = true
			return cfg
		}
	}
	if spec.Sampling != nil {
		return s.runSampled(ctx, spec, src, mk, tr)
	}
	res, err := core.RunSourceProgress(ctx, src, *spec.Warmup, spec.Insts, mk, s.progress)
	if err != nil {
		return Report{}, err
	}
	rep := newReport(spec, src.Name(), res)
	if tr != nil {
		rep.Telemetry = newTelemetryReport(tr, res)
	}
	return rep, nil
}

// runSampled executes a validated spec's sampling block through
// core.RunSampled, resolving the checkpoint side-file first when asked.
// tr, when non-nil, receives phase spans and yields the report's
// Telemetry block.
func (s *Sim) runSampled(ctx context.Context, spec RunSpec, src workload.Source, mk core.ConfigFactory, tr *telemetry.Trace) (Report, error) {
	sp := core.SamplingParams{
		Intervals:     spec.Sampling.Intervals,
		IntervalInsts: spec.Sampling.IntervalInsts,
		WarmupInsts:   spec.Sampling.Warmup,
		DetailWarmup:  spec.Sampling.DetailWarmup,
	}
	if s.progress != nil {
		// Map per-interval completion onto the (streamed, total) progress
		// contract: each interval contributes its detailed budget. Calls
		// arrive serialized from core.RunSampled, one per interval.
		per := spec.Sampling.DetailWarmup + spec.Sampling.IntervalInsts
		on := s.progress
		sp.OnInterval = func(done, total int) {
			on(int64(done)*per, int64(total)*per)
		}
	}
	if spec.Sampling.Checkpoints {
		fs, ok := src.(trace.FileSource)
		if !ok {
			return Report{}, fmt.Errorf("sim: %w: sampling checkpoints need a trace-backed workload, %q is synthetic",
				ErrInvalidSpec, src.Name())
		}
		cf, err := ensureCheckpoints(fs, mk, spec)
		if err != nil {
			return Report{}, err
		}
		sp.Checkpoints = cf
	}
	res, st, err := core.RunSampled(ctx, src, *spec.Warmup, spec.Insts, mk, sp)
	if err != nil {
		return Report{}, err
	}
	rep := newReport(spec, src.Name(), res)
	rep.Sampling = &SamplingReport{
		Intervals:       st.Intervals,
		IntervalInsts:   st.IntervalInsts,
		WarmupInsts:     st.WarmupInsts,
		DetailWarmup:    st.DetailWarmup,
		CheckpointsUsed: st.CheckpointsUsed,
		IPCMean:         st.IPCMean,
		IPCStdDev:       st.IPCStdDev,
		IPCCI95:         st.IPCCI95,
		IntervalIPCs:    st.IntervalIPCs,
	}
	if tr != nil {
		rep.Telemetry = newTelemetryReport(tr, res)
	}
	return rep, nil
}

// ensureCheckpoints returns the trace's checkpoint side-file for the
// run's configuration, building and writing it (one continuous
// functional-warming pass over the trace) when it is missing, corrupt
// or belongs to a different trace/configuration. The side-file is the
// cache that amortizes warming across sampled runs: the first request
// pays for the pass, every later one restores.
func ensureCheckpoints(fs trace.FileSource, mk core.ConfigFactory, spec RunSpec) (*trace.CheckpointFile, error) {
	cfgName := mk().Name
	path := trace.CheckpointPath(fs.Path, cfgName)
	r, err := trace.OpenFile(fs.Path)
	if err != nil {
		return nil, err
	}
	hdr := r.Header()
	r.Close()
	if cf, err := trace.LoadCheckpoints(path); err == nil {
		if err := cf.Validate(hdr, cfgName); err == nil {
			mCkptReused.Inc()
			return cf, nil
		}
	}
	mCkptRebuilt.Inc()
	upTo := *spec.Warmup + spec.Insts
	// One point per interval stride, bounded so a huge run cannot bloat
	// the side-file past 64 snapshots.
	every := spec.Insts / int64(spec.Sampling.Intervals)
	if min := upTo / 64; every < min {
		every = min
	}
	if every < 1 {
		every = 1
	}
	points, name, err := core.BuildCheckpoints(fs, mk, every, upTo)
	if err != nil {
		return nil, err
	}
	cf := &trace.CheckpointFile{
		TraceName:  hdr.Name,
		TraceInsts: int64(hdr.Insts),
		ConfigName: name,
		Points:     points,
	}
	if err := trace.WriteCheckpoints(path, cf); err != nil {
		return nil, err
	}
	return cf, nil
}

// Run executes a declarative spec: shorthand for FromSpec(spec).Run(ctx).
func Run(ctx context.Context, spec RunSpec) (Report, error) {
	return FromSpec(spec).Run(ctx)
}

// sourceFor resolves a validated spec's workload selection to a source.
// cat is the catalog validate already built for the workload check (nil
// for trace/profile selections, or when the caller validated separately).
func sourceFor(spec RunSpec, cat *workload.Catalog) (workload.Source, error) {
	switch {
	case spec.Trace != "":
		return trace.NewFileSource(spec.Trace), nil
	case spec.Profile != nil:
		return workload.ProfileSource{Prof: *spec.Profile}, nil
	case probe.IsProbeName(spec.Workload):
		return probe.FromName(spec.Workload)
	default:
		if cat == nil {
			var err error
			if cat, err = trace.Catalog(spec.TraceDir); err != nil {
				return nil, err
			}
		}
		src, ok := cat.Lookup(spec.Workload)
		if !ok {
			return nil, util.UnknownName("workload", spec.Workload, cat.Names())
		}
		return src, nil
	}
}

// factoryFor resolves a validated spec's configuration to a pipeline
// config factory.
func factoryFor(spec RunSpec) (core.ConfigFactory, error) {
	if spec.BeBoP != nil {
		bb := *spec.BeBoP
		policy, ok := specwindow.ParsePolicy(bb.Policy)
		if !ok {
			return nil, util.UnknownName("recovery policy", bb.Policy, Policies())
		}
		cfg := core.BlockConfig(bb.NPred, bb.BaseEntries, bb.TaggedEntries,
			bb.StrideBits, bb.WindowSize, policy)
		return core.EOLEBeBoP(customBeBoPName(bb), cfg), nil
	}
	return core.NamedFactory(spec.Config, spec.Predictor)
}

// customBeBoPName labels a custom geometry in Report.Config, so two runs
// with different knobs stay distinguishable in result files.
func customBeBoPName(bb BeBoPConfig) string {
	return fmt.Sprintf("custom-%dp-%db-%dt-%ds-w%d-%s",
		bb.NPred, bb.BaseEntries, bb.TaggedEntries, bb.StrideBits, bb.WindowSize, bb.Policy)
}

// StorageKBOf reports a configuration's predictor storage in KB without
// running it (Table III accounting).
func StorageKBOf(spec RunSpec) (float64, error) {
	spec, err := spec.Validate()
	if err != nil {
		return 0, err
	}
	if spec.Config != "eole-bebop" {
		return 0, nil
	}
	var cfg bebop.Config
	if spec.BeBoP != nil {
		bb := *spec.BeBoP
		policy, _ := specwindow.ParsePolicy(bb.Policy)
		cfg = core.BlockConfig(bb.NPred, bb.BaseEntries, bb.TaggedEntries, bb.StrideBits, bb.WindowSize, policy)
	} else if cfg, err = core.TableIIIByName(spec.Predictor); err != nil {
		return 0, err
	}
	return float64(bebop.New(cfg).StorageBits()) / 8 / 1024, nil
}

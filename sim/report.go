package sim

import (
	"fmt"

	"bebop/internal/pipeline"
)

// ReportSchemaVersion is the current Report JSON schema. Bump it when a
// field is added, renamed or changes meaning, so result files state
// which schema they were written under.
//
// v2 added the optional "sampling" block (sampled-simulation estimates
// with confidence intervals); every v1 field is unchanged.
//
// v3 added the optional "telemetry" block (run phase spans and per-PC
// hard-to-predict misprediction attribution, present only for runs
// executed with WithTelemetry); every v2 field is unchanged.
const ReportSchemaVersion = 3

// Report is the stable result of one simulation run: pipeline counters,
// derived rates and value-prediction statistics, flattened into one
// schema-versioned struct with an explicit JSON encoding. Reports are
// deterministic: the same validated RunSpec always produces a
// bit-identical Report, which is what makes them cacheable, diffable
// and safe to compare across machines.
type Report struct {
	// SchemaVersion is ReportSchemaVersion.
	SchemaVersion int `json:"schema_version"`

	// Spec is the normalized RunSpec that produced this report —
	// replaying it (locally or through POST /v1/runs) reproduces the
	// report bit-identically. For server responses it also shows the
	// budget actually used after server-side clamping.
	Spec RunSpec `json:"spec"`

	// Config is the resolved pipeline model name, e.g.
	// "EOLE_4_60/Medium"; Workload is the resolved workload name.
	Config   string `json:"config"`
	Workload string `json:"workload"`

	// Core run counters (measured window only).
	Cycles int64   `json:"cycles"`
	Insts  uint64  `json:"insts"`
	UOps   uint64  `json:"uops"`
	IPC    float64 `json:"ipc"`
	UPC    float64 `json:"upc"`

	// Branch prediction.
	BranchMispredicts uint64  `json:"branch_mispredicts"`
	BranchMPKI        float64 `json:"branch_mpki"`
	BTBMisses         uint64  `json:"btb_misses"`

	// Memory hierarchy.
	L1DMisses       uint64 `json:"l1d_misses"`
	L1DMSHRMerges   uint64 `json:"l1d_mshr_merges"`
	L2Misses        uint64 `json:"l2_misses"`
	L2MSHRMerges    uint64 `json:"l2_mshr_merges"`
	MemOrderFlushes uint64 `json:"mem_order_flushes"`

	// Squash traffic.
	SquashedUOps     uint64 `json:"squashed_uops"`
	ValueMispredicts uint64 `json:"value_mispredicts"`

	// EOLE early/late execution (Section V).
	EarlyExecuted uint64 `json:"early_executed"`
	LateExecuted  uint64 `json:"late_executed"`
	FreeLoadImms  uint64 `json:"free_load_imms"`

	// VPStorageBits is the value predictor storage budget (0 without VP).
	VPStorageBits int `json:"vp_storage_bits"`

	// VP carries the value prediction statistics.
	VP VPReport `json:"vp"`

	// Sampling is present only for sampled runs (RunSpec.Sampling): the
	// counters above then aggregate the measured intervals, IPC is the
	// mean of per-interval IPCs, and this block carries the confidence
	// interval around it.
	Sampling *SamplingReport `json:"sampling,omitempty"`

	// Telemetry is present only for runs executed with WithTelemetry:
	// wall-clock phase spans and per-PC H2P misprediction attribution.
	// It is an observation of the run, not part of its identity — every
	// other field stays bit-identical whether or not telemetry is on,
	// and span timings legitimately vary between identical runs.
	Telemetry *TelemetryReport `json:"telemetry,omitempty"`
}

// SamplingReport is the sampled-simulation slice of a Report.
type SamplingReport struct {
	// The normalized sampling parameters the run used.
	Intervals     int   `json:"intervals"`
	IntervalInsts int64 `json:"interval_insts"`
	WarmupInsts   int64 `json:"warmup_insts"`
	DetailWarmup  int64 `json:"detail_warmup"`
	// CheckpointsUsed counts intervals served from a checkpoint restore.
	CheckpointsUsed int `json:"checkpoints_used"`
	// IPCMean is the mean of per-interval IPCs (equal to the report's
	// IPC field); IPCCI95 is the Student-t 95% confidence half-width.
	IPCMean   float64 `json:"ipc_mean"`
	IPCStdDev float64 `json:"ipc_stddev"`
	IPCCI95   float64 `json:"ipc_ci95"`
	// IntervalIPCs holds each interval's IPC in interval order.
	IntervalIPCs []float64 `json:"interval_ipcs"`
}

// VPReport is the value-prediction slice of a Report.
type VPReport struct {
	// Eligible counts retired µ-ops that were prediction candidates;
	// Attributed those that received a prediction; Used those whose
	// prediction was confident (written to the PRF); UsedCorrect the
	// used predictions that matched the architectural value.
	Eligible    uint64 `json:"eligible"`
	Attributed  uint64 `json:"attributed"`
	Used        uint64 `json:"used"`
	UsedCorrect uint64 `json:"used_correct"`
	// Speculative window activity (Section IV).
	SpecWindowHits   uint64 `json:"spec_window_hits"`
	SpecWindowProbes uint64 `json:"spec_window_probes"`
	// Coverage is Used/Eligible; Accuracy is UsedCorrect/Used (0 when
	// nothing was used).
	Coverage float64 `json:"coverage"`
	Accuracy float64 `json:"accuracy"`
}

// newReport flattens a pipeline result into the public schema.
func newReport(spec RunSpec, workloadName string, r pipeline.Result) Report {
	return Report{
		SchemaVersion: ReportSchemaVersion,
		Spec:          spec,
		Config:        r.Config,
		Workload:      workloadName,

		Cycles: r.Cycles,
		Insts:  r.Insts,
		UOps:   r.UOps,
		IPC:    r.IPC,
		UPC:    r.UPC,

		BranchMispredicts: r.BrMispredicts,
		BranchMPKI:        r.BrMispPKI,
		BTBMisses:         r.BTBMisses,

		L1DMisses:       r.L1DMisses,
		L1DMSHRMerges:   r.L1DMSHRMerges,
		L2Misses:        r.L2Misses,
		L2MSHRMerges:    r.L2MSHRMerges,
		MemOrderFlushes: r.MemOrderFlushes,

		SquashedUOps:     r.SquashedUOps,
		ValueMispredicts: r.ValueMispredicts,

		EarlyExecuted: r.EarlyExecuted,
		LateExecuted:  r.LateExecuted,
		FreeLoadImms:  r.FreeLoadImms,

		VPStorageBits: r.StorageBits,
		VP: VPReport{
			Eligible:         r.VP.Eligible,
			Attributed:       r.VP.Attributed,
			Used:             r.VP.Used,
			UsedCorrect:      r.VP.UsedCorrect,
			SpecWindowHits:   r.VP.SpecWindowHits,
			SpecWindowProbes: r.VP.SpecWindowProbes,
			Coverage:         r.VP.Coverage(),
			Accuracy:         r.VP.Accuracy(),
		},
	}
}

// VPStorageKB is the value predictor storage budget in kilobytes.
func (r Report) VPStorageKB() float64 { return float64(r.VPStorageBits) / 8 / 1024 }

// VPStorage renders the storage budget like "32.76KB".
func (r Report) VPStorage() string { return fmt.Sprintf("%.2fKB", r.VPStorageKB()) }

// SpeedupOver returns cycles(base)/cycles(r), the per-benchmark speedup
// metric used throughout the paper's figures (0 if r took no cycles).
func (r Report) SpeedupOver(base Report) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(r.Cycles)
}

// Package bebop_bench holds the benchmark harness that regenerates every
// table and figure of the paper's evaluation (Section VI). One benchmark
// per artefact; each reports the paper's headline metric (geometric-mean
// speedup, per-config summaries) as testing.B custom metrics, and prints
// the full series under -v.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The default instruction budget keeps a full run laptop-scale; set
// BEBOP_BENCH_INSTS to raise it (the sweeps in EXPERIMENTS.md use the
// default so they are reproducible as-is).
package bebop_bench

import (
	"os"
	"strconv"
	"strings"
	"testing"

	"bebop/internal/core"
	"bebop/internal/experiments"
	"bebop/internal/workload"
)

// benchOpts picks the instruction budget and workload subset for benches.
func benchOpts() experiments.Options {
	insts := int64(60_000)
	if s := os.Getenv("BEBOP_BENCH_INSTS"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil && v > 0 {
			insts = v
		}
	}
	var names []string
	if os.Getenv("BEBOP_BENCH_FULL") == "" {
		// A 12-benchmark core spanning the predictability spectrum keeps
		// `go test -bench=.` under a few minutes; set BEBOP_BENCH_FULL=1
		// for the whole Table II suite.
		names = []string{
			"swim", "applu", "wupwise", "bzip2", "gcc", "mcf",
			"xalancbmk", "milc", "hmmer", "povray", "twolf", "GemsFDTD",
		}
	}
	return experiments.Options{Insts: insts, Workloads: names}
}

// BenchmarkTable2BaselineIPC regenerates Table II: baseline IPC per
// workload; reports the mean measured IPC.
func BenchmarkTable2BaselineIPC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOpts())
		rows := r.Table2()
		sum := 0.0
		for _, row := range rows {
			sum += row.IPC
		}
		b.ReportMetric(sum/float64(len(rows)), "meanIPC")
		if b.N == 1 && testing.Verbose() {
			experiments.RenderTable2(os.Stdout, rows)
		}
	}
}

// BenchmarkFig5aPredictors regenerates Fig. 5(a): 2d-Stride, VTAGE,
// VTAGE-2d-Stride and D-VTAGE speedups over Baseline_6_60.
func BenchmarkFig5aPredictors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOpts())
		series := r.Fig5a()
		for _, s := range series {
			b.ReportMetric(s.Summary.GMean, metric("gmean-", s.Name))
		}
		if b.N == 1 && testing.Verbose() {
			experiments.RenderSeriesTable(os.Stdout, "Fig 5(a)", series)
		}
	}
}

// BenchmarkFig5bEOLE regenerates Fig. 5(b): EOLE_4_60 over
// Baseline_VP_6_60 (the issue-width reduction should be near-free).
func BenchmarkFig5bEOLE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOpts())
		s := r.Fig5b()
		b.ReportMetric(s.Summary.GMean, "gmean")
		b.ReportMetric(s.Summary.Min, "min")
	}
}

// BenchmarkFig6aNpred regenerates Fig. 6(a): predictions per entry.
func BenchmarkFig6aNpred(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOpts())
		series := r.Fig6a()
		for _, s := range series {
			b.ReportMetric(s.Summary.GMean, metric("gmean-", s.Name))
		}
		if b.N == 1 && testing.Verbose() {
			experiments.RenderSummaries(os.Stdout, "Fig 6(a)", series)
		}
	}
}

// BenchmarkFig6bSizes regenerates Fig. 6(b): structure size sweep.
func BenchmarkFig6bSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOpts())
		series := r.Fig6b()
		for _, s := range series {
			b.ReportMetric(s.Summary.GMean, metric("gmean-", s.Name))
		}
	}
}

// BenchmarkPartialStrides regenerates the Section VI-B(a) partial stride
// study: 64/32/16/8-bit strides at near-constant performance.
func BenchmarkPartialStrides(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOpts())
		rows := r.PartialStrides()
		for _, row := range rows {
			b.ReportMetric(row.Series.Summary.GMean, metric("gmean-", row.Series.Name))
			b.ReportMetric(row.StorageKB, metric("KB-", row.Series.Name))
		}
		if b.N == 1 && testing.Verbose() {
			experiments.RenderStrides(os.Stdout, rows)
		}
	}
}

// BenchmarkFig7aRecovery regenerates Fig. 7(a): recovery policies.
func BenchmarkFig7aRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOpts())
		series := r.Fig7a()
		for _, s := range series {
			b.ReportMetric(s.Summary.GMean, metric("gmean-", s.Name))
		}
	}
}

// BenchmarkFig7bWindow regenerates Fig. 7(b): speculative window sizes.
func BenchmarkFig7bWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOpts())
		series := r.Fig7b()
		for _, s := range series {
			b.ReportMetric(s.Summary.GMean, metric("gmean-", s.Name))
		}
		if b.N == 1 && testing.Verbose() {
			experiments.RenderSummaries(os.Stdout, "Fig 7(b)", series)
		}
	}
}

// BenchmarkFig8Final regenerates Fig. 8: the Table III configurations over
// Baseline_6_60 — the paper's headline result (Medium ~32KB keeps most of
// the idealistic speedup).
func BenchmarkFig8Final(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOpts())
		series := r.Fig8()
		for _, s := range series {
			b.ReportMetric(s.Summary.GMean, metric("gmean-", s.Name))
		}
		if b.N == 1 && testing.Verbose() {
			experiments.RenderSeriesTable(os.Stdout, "Fig 8", series)
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (µ-ops
// simulated per wall second) — the cost of one Baseline_6_60 run.
func BenchmarkSimulatorThroughput(b *testing.B) {
	prof, _ := workload.ProfileByName("gcc")
	b.ResetTimer()
	totalUOps := uint64(0)
	for i := 0; i < b.N; i++ {
		res := core.Run(prof, 50_000, core.Baseline())
		totalUOps += res.UOps
	}
	b.ReportMetric(float64(totalUOps)/b.Elapsed().Seconds(), "µops/s")
}

// BenchmarkSimulatorThroughputBeBoP measures the fully loaded hot path —
// EOLE pipeline plus the block-based BeBoP infrastructure — so predictor-
// side allocation or speed regressions are visible next to the baseline
// number.
func BenchmarkSimulatorThroughputBeBoP(b *testing.B) {
	prof, _ := workload.ProfileByName("gcc")
	mk := core.EOLEBeBoP("Medium", core.MediumConfig())
	b.ResetTimer()
	totalUOps := uint64(0)
	for i := 0; i < b.N; i++ {
		res := core.Run(prof, 50_000, mk)
		totalUOps += res.UOps
	}
	b.ReportMetric(float64(totalUOps)/b.Elapsed().Seconds(), "µops/s")
}

// metric builds a ReportMetric unit from a series label (units must not
// contain whitespace).
func metric(prefix, name string) string {
	r := strings.NewReplacer(" ", "", "+", "_", "/", "-")
	return prefix + r.Replace(name)
}

// BenchmarkAblationLineages compares the predictor lineages of Section
// VII: {LVP, Stride, FCM, VTAGE, D-FCM, D-VTAGE} on Baseline_VP_6_60.
func BenchmarkAblationLineages(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOpts())
		for _, s := range r.Ablations() {
			b.ReportMetric(s.Summary.GMean, metric("gmean-", s.Name))
		}
	}
}
